//! Pluggable graph-storage API.
//!
//! Every engine, the sim, and the serve daemon used to be hard-wired to
//! the CSR + snapshot substrate ([`crate::streaming::StreamingGraph`]).
//! [`GraphStore`] captures that substrate's exact read and mutation
//! surface as a trait, so the storage layout becomes a first-class,
//! sweepable axis ([`StorageKind`]):
//!
//! * [`StorageKind::Csr`] — the original store. Per-batch work
//!   materializes a full [`Csr`] snapshot; the deterministic baseline
//!   every byte-identity gate is pinned to.
//! * [`StorageKind::Hybrid`] — a GraphTango-style degree-adaptive store
//!   ([`crate::hybrid::HybridStore`]): low-degree vertices inline,
//!   medium-degree in linear buffers, high-degree behind an
//!   open-addressed hash index, with hysteresis on tier transitions.
//!   Batch application touches O(touched vertices) instead of paying a
//!   whole-graph rebuild.
//!
//! # Determinism contract
//!
//! Both stores expose *identical semantics*: the same operation sequence
//! yields the same edge iteration order (push / swap-remove buffer
//! order), the same [`AppliedBatch`], the same quarantine records, and
//! the same [`Csr`] snapshot bytes. That is what keeps the seeded
//! [`crate::update::BatchComposer`] — which samples deletions by index
//! from [`GraphStore::edges_vec`] — on the same trajectory for every
//! store, so CSR-vs-hybrid runs agree on every algorithm fixpoint.
//!
//! The hybrid store can additionally report which of its internal
//! regions a batch application touched ([`StorageTouch`]), letting the
//! simulator's cache/NoC models observe the layout difference. The CSR
//! store reports nothing, so `StorageKind::Csr` runs stay byte-identical
//! to the pre-trait era on every surface.

use std::fmt;

use crate::csr::Csr;
use crate::hybrid::HybridStore;
use crate::quarantine::QuarantineReport;
use crate::streaming::{AppliedBatch, ApplyError, StreamingGraph};
use crate::types::{Edge, EdgeCount, VertexCount, VertexId, Weight};
use crate::update::UpdateBatch;

/// Which graph-storage backend a run uses. A first-class axis: it
/// appears in `RunConfig`, `SweepSpec::storages`, and the serve daemon's
/// `--storage` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageKind {
    /// CSR + per-batch snapshot rebuild (the deterministic baseline).
    #[default]
    Csr,
    /// GraphTango-style degree-adaptive hybrid adjacency.
    Hybrid,
}

impl StorageKind {
    /// Every storage kind, in documentation order.
    pub const ALL: [StorageKind; 2] = [StorageKind::Csr, StorageKind::Hybrid];

    /// Stable lower-case label (CLI values, report fields).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StorageKind::Csr => "csr",
            StorageKind::Hybrid => "hybrid",
        }
    }

    /// Parses a [`StorageKind::label`] string (inverse of `label`).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Tier occupancy and transition counters of a store.
///
/// The CSR store has no tiers and reports all-zero; consumers that emit
/// observability counters only when a field is non-zero therefore stay
/// byte-identical under [`StorageKind::Csr`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Vertices currently stored in the inline tier.
    pub inline_vertices: u64,
    /// Vertices currently stored as growable linear buffers.
    pub linear_vertices: u64,
    /// Vertices currently stored behind a hash index.
    pub indexed_vertices: u64,
    /// Total tier promotions (inline→linear, linear→indexed).
    pub promotions: u64,
    /// Total tier demotions (indexed→linear, linear→inline).
    pub demotions: u64,
}

impl StorageStats {
    /// Whether every counter is zero (true for tierless stores).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == StorageStats::default()
    }
}

/// An internal region of a store's layout, from the accelerator model's
/// point of view. The engine layer maps these onto the simulator's
/// address-space regions (`RowHeader` → `Offset_Array`, `NeighborSlot` /
/// `WeightSlot` → `Neighbor_Array` / `Weight_Array`, `HashSlot` → the
/// hash-table region), so no new simulated address space is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageRegion {
    /// Per-vertex row metadata (tier tag, length, inline payload).
    RowHeader,
    /// A neighbor-id slot in a linear or indexed buffer.
    NeighborSlot,
    /// A weight slot parallel to a neighbor slot.
    WeightSlot,
    /// An open-addressed hash-index slot.
    HashSlot,
}

/// Stride separating per-vertex slot indices in [`StorageTouch::index`]:
/// slot-region touches encode `vertex * TOUCH_ROW_STRIDE + position`, so
/// positions within one row stay contiguous and distinct rows never
/// alias. Consumers recover the in-row position as
/// `index % TOUCH_ROW_STRIDE` before folding the touch into their own
/// address model.
pub const TOUCH_ROW_STRIDE: u64 = 1 << 20;

/// One memory touch a store performed while applying updates. `index` is
/// a synthetic element index ([`TOUCH_ROW_STRIDE`]-strided for slot
/// regions, the vertex id for [`StorageRegion::RowHeader`]),
/// deterministic for a given operation sequence; the simulator folds it
/// into a cache-line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageTouch {
    /// The vertex whose row was touched (for core attribution).
    pub vertex: VertexId,
    /// Which layout region was touched.
    pub region: StorageRegion,
    /// Element index within the region.
    pub index: u64,
    /// Whether the touch was a write.
    pub is_write: bool,
}

/// The storage surface every backend implements: the read surface the
/// engines and the sim consume, and the mutation surface the session
/// drives — with semantics *identical* to [`StreamingGraph`] (the
/// documented contract the equivalence property suite pins down).
pub trait GraphStore {
    /// Which backend this is.
    fn kind(&self) -> StorageKind;

    /// Number of vertices.
    fn num_vertices(&self) -> VertexCount;

    /// Number of directed edges currently present.
    fn num_edges(&self) -> EdgeCount;

    /// Out-degree of `v` (0 for out-of-range ids).
    fn degree(&self, v: VertexId) -> usize;

    /// Whether edge `(src, dst)` is present.
    fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool;

    /// The weight of edge `(src, dst)`, when present.
    fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight>;

    /// Visits `v`'s out-neighbors in the store's buffer order (the order
    /// [`GraphStore::edges_vec`] reports them in).
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight));

    /// `v`'s out-neighbors as a vector, in buffer order.
    fn neighbors_of(&self, v: VertexId) -> Vec<(VertexId, Weight)> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, &mut |n, w| out.push((n, w)));
        out
    }

    /// Grows the vertex set so `vertex` is addressable.
    fn ensure_vertex(&mut self, vertex: VertexId);

    /// Inserts edges in bulk (initial load). Re-inserted edges overwrite
    /// their weight; self-loops are skipped (after the bounds check).
    ///
    /// # Errors
    ///
    /// [`ApplyError::VertexOutOfBounds`] for endpoints outside the
    /// current vertex range.
    fn insert_edges(&mut self, edges: &[Edge]) -> Result<(), ApplyError>;

    /// Applies a validated batch atomically (validate-all-first; on error
    /// the store is unchanged).
    ///
    /// # Errors
    ///
    /// [`ApplyError::VertexOutOfBounds`] or [`ApplyError::MissingEdge`].
    fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<AppliedBatch, ApplyError>;

    /// Applies a batch leniently, quarantining what strict application
    /// would reject (same records, same reasons, same details).
    fn apply_batch_lenient(
        &mut self,
        batch: &UpdateBatch,
        quarantine: &mut QuarantineReport,
    ) -> AppliedBatch;

    /// Materializes an immutable CSR snapshot of the current graph.
    fn snapshot(&self) -> Csr;

    /// All present edges, row-major in buffer order (the deletion
    /// sampling pool for [`crate::update::BatchComposer`] — the order is
    /// determinism-load-bearing and identical across backends).
    fn edges_vec(&self) -> Vec<Edge>;

    /// Tier occupancy / transition counters (all-zero for tierless
    /// stores).
    fn stats(&self) -> StorageStats {
        StorageStats::default()
    }

    /// Enables or disables update-touch tracing (no-op for stores that
    /// never trace).
    fn set_touch_tracing(&mut self, _enabled: bool) {}

    /// Drains the touches recorded since the last call (always empty for
    /// the CSR store, which is what keeps CSR runs byte-identical).
    fn take_update_touches(&mut self) -> Vec<StorageTouch> {
        Vec::new()
    }
}

impl GraphStore for StreamingGraph {
    fn kind(&self) -> StorageKind {
        StorageKind::Csr
    }

    fn num_vertices(&self) -> VertexCount {
        self.vertex_count()
    }

    fn num_edges(&self) -> EdgeCount {
        self.edge_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.contains_edge(src, dst)
    }

    fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        self.edge_weight(src, dst)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight)) {
        for &(n, w) in self.out_edges(v) {
            f(n, w);
        }
    }

    fn ensure_vertex(&mut self, vertex: VertexId) {
        self.ensure_vertex(vertex);
    }

    fn insert_edges(&mut self, edges: &[Edge]) -> Result<(), ApplyError> {
        StreamingGraph::insert_edges(self, edges.iter().copied())
    }

    fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<AppliedBatch, ApplyError> {
        StreamingGraph::apply_batch(self, batch)
    }

    fn apply_batch_lenient(
        &mut self,
        batch: &UpdateBatch,
        quarantine: &mut QuarantineReport,
    ) -> AppliedBatch {
        StreamingGraph::apply_batch_lenient(self, batch, quarantine)
    }

    fn snapshot(&self) -> Csr {
        StreamingGraph::snapshot(self)
    }

    fn edges_vec(&self) -> Vec<Edge> {
        StreamingGraph::edges_vec(self)
    }
}

/// Enum dispatch over the built-in stores. The engine session holds one
/// of these (the stores are intentionally not boxed: enum dispatch keeps
/// the CSR arm's code path bit-for-bit the one `StreamingGraph` callers
/// always took, and keeps non-`Send` constraints unchanged).
#[derive(Debug, Clone)]
pub enum AnyStore {
    /// The CSR + snapshot substrate.
    Csr(StreamingGraph),
    /// The degree-adaptive hybrid substrate.
    Hybrid(HybridStore),
}

impl AnyStore {
    /// An empty store of the given kind with `vertex_count` vertices.
    #[must_use]
    pub fn with_capacity(kind: StorageKind, vertex_count: VertexCount) -> Self {
        match kind {
            StorageKind::Csr => AnyStore::Csr(StreamingGraph::with_capacity(vertex_count)),
            StorageKind::Hybrid => AnyStore::Hybrid(HybridStore::with_capacity(vertex_count)),
        }
    }

    /// Builds a store of the given kind from an existing
    /// [`StreamingGraph`], replaying its edges in iteration order so the
    /// resulting buffer order is identical across kinds.
    #[must_use]
    pub fn from_streaming(kind: StorageKind, graph: StreamingGraph) -> Self {
        match kind {
            StorageKind::Csr => AnyStore::Csr(graph),
            StorageKind::Hybrid => {
                let mut hybrid = HybridStore::with_capacity(graph.vertex_count());
                for e in graph.iter_edges() {
                    hybrid.insert_edge(e);
                }
                AnyStore::Hybrid(hybrid)
            }
        }
    }

    fn as_store(&self) -> &dyn GraphStore {
        match self {
            AnyStore::Csr(g) => g,
            AnyStore::Hybrid(h) => h,
        }
    }

    fn as_store_mut(&mut self) -> &mut dyn GraphStore {
        match self {
            AnyStore::Csr(g) => g,
            AnyStore::Hybrid(h) => h,
        }
    }
}

impl GraphStore for AnyStore {
    fn kind(&self) -> StorageKind {
        self.as_store().kind()
    }

    fn num_vertices(&self) -> VertexCount {
        self.as_store().num_vertices()
    }

    fn num_edges(&self) -> EdgeCount {
        self.as_store().num_edges()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.as_store().degree(v)
    }

    fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.as_store().contains_edge(src, dst)
    }

    fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        self.as_store().edge_weight(src, dst)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight)) {
        self.as_store().for_each_neighbor(v, f);
    }

    fn ensure_vertex(&mut self, vertex: VertexId) {
        self.as_store_mut().ensure_vertex(vertex);
    }

    fn insert_edges(&mut self, edges: &[Edge]) -> Result<(), ApplyError> {
        self.as_store_mut().insert_edges(edges)
    }

    fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<AppliedBatch, ApplyError> {
        self.as_store_mut().apply_batch(batch)
    }

    fn apply_batch_lenient(
        &mut self,
        batch: &UpdateBatch,
        quarantine: &mut QuarantineReport,
    ) -> AppliedBatch {
        self.as_store_mut().apply_batch_lenient(batch, quarantine)
    }

    fn snapshot(&self) -> Csr {
        self.as_store().snapshot()
    }

    fn edges_vec(&self) -> Vec<Edge> {
        self.as_store().edges_vec()
    }

    fn stats(&self) -> StorageStats {
        self.as_store().stats()
    }

    fn set_touch_tracing(&mut self, enabled: bool) {
        self.as_store_mut().set_touch_tracing(enabled);
    }

    fn take_update_touches(&mut self) -> Vec<StorageTouch> {
        self.as_store_mut().take_update_touches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::EdgeUpdate;

    #[test]
    fn storage_kind_labels_roundtrip() {
        for kind in StorageKind::ALL {
            assert_eq!(StorageKind::from_label(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(StorageKind::from_label("nope"), None);
        assert_eq!(StorageKind::default(), StorageKind::Csr);
    }

    #[test]
    fn csr_store_reports_no_tiers_and_no_touches() {
        let mut g = StreamingGraph::with_capacity(4);
        GraphStore::insert_edges(&mut g, &[Edge::new(0, 1, 1.0)]).unwrap();
        assert!(GraphStore::stats(&g).is_empty());
        g.set_touch_tracing(true);
        let batch = UpdateBatch::from_updates(vec![EdgeUpdate::addition(1, 2, 1.0)]).unwrap();
        let _ = GraphStore::apply_batch(&mut g, &batch).unwrap();
        assert!(g.take_update_touches().is_empty());
    }

    #[test]
    fn any_store_round_trips_both_kinds() {
        for kind in StorageKind::ALL {
            let mut store = AnyStore::with_capacity(kind, 5);
            assert_eq!(store.kind(), kind);
            store.insert_edges(&[Edge::new(0, 1, 2.0), Edge::new(1, 2, 3.0)]).unwrap();
            assert_eq!(store.num_edges(), 2);
            assert_eq!(store.degree(0), 1);
            assert_eq!(store.edge_weight(1, 2), Some(3.0));
            assert!(store.contains_edge(0, 1));
            assert_eq!(store.neighbors_of(1), vec![(2, 3.0)]);
            let snap = store.snapshot();
            assert_eq!(snap.vertex_count(), 5);
            assert_eq!(snap.edge_count(), 2);
        }
    }

    #[test]
    fn from_streaming_preserves_edge_order_across_kinds() {
        let mut g = StreamingGraph::with_capacity(8);
        StreamingGraph::insert_edges(
            &mut g,
            [
                Edge::new(3, 1, 1.0),
                Edge::new(3, 7, 2.0),
                Edge::new(0, 4, 3.0),
                Edge::new(3, 2, 4.0),
            ],
        )
        .unwrap();
        let want = g.edges_vec();
        let hybrid = AnyStore::from_streaming(StorageKind::Hybrid, g.clone());
        let csr = AnyStore::from_streaming(StorageKind::Csr, g);
        assert_eq!(hybrid.edges_vec(), want);
        assert_eq!(csr.edges_vec(), want);
        assert_eq!(hybrid.snapshot(), csr.snapshot());
    }
}
