//! Graph statistics: degree distributions and skew measures.
//!
//! Observation two of the paper (§2.4) rests on power-law access skew;
//! these helpers quantify how skewed a (generated or loaded) graph actually
//! is, so the dataset stand-ins can be validated against the phenomenon
//! rather than taken on faith. Used by the Table 2 runner and the Fig 4
//! analysis.

use crate::csr::Csr;
use crate::types::VertexId;

/// Summary statistics of a graph's out-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Fraction of edges owned by the top 1 % of vertices by degree.
    pub top1pct_edge_share: f64,
    /// Fraction of edges owned by the top 0.5 % (the paper's α default).
    pub top_half_pct_edge_share: f64,
    /// Gini coefficient of the degree distribution (0 = uniform,
    /// → 1 = maximally concentrated).
    pub gini: f64,
}

/// Computes [`DegreeStats`] for a snapshot.
#[must_use]
pub fn degree_stats(graph: &Csr) -> DegreeStats {
    let n = graph.vertex_count();
    let mut degrees: Vec<usize> = (0..n as VertexId).map(|v| graph.degree(v)).collect();
    degrees.sort_unstable();
    let edges: usize = degrees.iter().sum();
    let max_degree = degrees.last().copied().unwrap_or(0);
    let mean_degree = if n == 0 { 0.0 } else { edges as f64 / n as f64 };

    let share_of_top = |fraction: f64| -> f64 {
        if edges == 0 || n == 0 {
            return 0.0;
        }
        let k = ((n as f64 * fraction).ceil() as usize).clamp(1, n);
        let top: usize = degrees.iter().rev().take(k).sum();
        top as f64 / edges as f64
    };

    // Gini over the sorted (ascending) degree sequence.
    let gini = if edges == 0 || n == 0 {
        0.0
    } else {
        let weighted: f64 =
            degrees.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
        (2.0 * weighted) / (n as f64 * edges as f64) - (n as f64 + 1.0) / n as f64
    };

    DegreeStats {
        vertices: n,
        edges,
        max_degree,
        mean_degree,
        top1pct_edge_share: share_of_top(0.01),
        top_half_pct_edge_share: share_of_top(0.005),
        gini,
    }
}

/// Out-degree histogram in power-of-two buckets: `result[k]` counts
/// vertices with degree in `[2^k, 2^(k+1))`; `result[0]` also counts
/// degree-0 vertices separately via [`zero_degree_count`].
#[must_use]
pub fn degree_histogram(graph: &Csr) -> Vec<usize> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in 0..graph.vertex_count() as VertexId {
        let d = graph.degree(v);
        if d == 0 {
            continue;
        }
        let bucket = (usize::BITS - 1 - d.leading_zeros()) as usize;
        if buckets.len() <= bucket {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += 1;
    }
    buckets
}

/// Number of vertices with no outgoing edges.
#[must_use]
pub fn zero_degree_count(graph: &Csr) -> usize {
    (0..graph.vertex_count() as VertexId).filter(|&v| graph.degree(v) == 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{Rmat, RmatConfig, Uniform};
    use crate::types::Edge;

    #[test]
    fn uniform_degrees_have_low_gini() {
        let edges = Uniform::new(1024, 8192, 7).edges();
        let g = Csr::from_edges(1024, &edges);
        let s = degree_stats(&g);
        assert!(s.gini < 0.35, "uniform gini {}", s.gini);
        assert!(s.top1pct_edge_share < 0.05);
    }

    #[test]
    fn rmat_degrees_are_concentrated() {
        let cfg = RmatConfig::new(11, 16).with_seed(5);
        let g = Csr::from_edges(cfg.vertex_count(), &Rmat::new(cfg).edges());
        let s = degree_stats(&g);
        assert!(s.gini > 0.5, "rmat gini {}", s.gini);
        assert!(s.top1pct_edge_share > 0.15, "top-1% share {}", s.top1pct_edge_share);
        assert!(s.top_half_pct_edge_share < s.top1pct_edge_share);
    }

    #[test]
    fn stats_on_star_graph() {
        let edges: Vec<Edge> = (1..100).map(|i| Edge::new(0, i, 1.0)).collect();
        let g = Csr::from_edges(100, &edges);
        let s = degree_stats(&g);
        assert_eq!(s.max_degree, 99);
        assert_eq!(s.edges, 99);
        assert!((s.top1pct_edge_share - 1.0).abs() < 1e-12, "hub owns everything");
        assert!(s.gini > 0.95);
    }

    #[test]
    fn empty_graph_stats_are_zeroed() {
        let g = Csr::from_edges(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(s.edges, 0);
        assert_eq!(s.gini, 0.0);
        assert!(degree_histogram(&g).is_empty());
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        // Degrees: 1, 2, 2, 5.
        let mut e = Vec::new();
        e.push(Edge::new(0, 1, 1.0));
        for d in [1u32, 2] {
            e.push(Edge::new(d, 0, 1.0));
            e.push(Edge::new(d, 3, 1.0));
        }
        for t in [0u32, 1, 2, 4, 5] {
            e.push(Edge::new(3, t, 1.0));
        }
        let g = Csr::from_edges(6, &e);
        let h = degree_histogram(&g);
        assert_eq!(h[0], 1, "one degree-1 vertex");
        assert_eq!(h[1], 2, "two degree-2..3 vertices");
        assert_eq!(h[2], 1, "one degree-4..7 vertex");
        assert_eq!(zero_degree_count(&g), 2);
    }
}
