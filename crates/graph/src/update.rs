//! Graph update batches.
//!
//! Streaming updates arrive as batches of edge additions and deletions
//! (§2.1, Fig 1). [`UpdateBatch`] validates and normalizes a batch;
//! [`BatchComposer`] synthesizes the paper's evaluation workload: after an
//! initial 50 % load, remaining edges stream in as additions while deletions
//! are sampled from the loaded graph (§4.1), in a configurable add:delete
//! ratio (Fig 24b).

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::prng::Xoshiro256StarStar;
use crate::quarantine::{QuarantineReason, QuarantineReport};
use crate::types::{Edge, VertexId, Weight};

/// The kind of a single graph update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// Insert an edge.
    Addition,
    /// Remove an edge.
    Deletion,
}

/// One streaming update: add or delete a directed edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeUpdate {
    /// Add or delete.
    pub kind: UpdateKind,
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Weight (meaningful for additions; ignored for deletions).
    pub weight: Weight,
}

impl EdgeUpdate {
    /// Creates an edge-addition update.
    #[must_use]
    pub fn addition(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Self { kind: UpdateKind::Addition, src, dst, weight }
    }

    /// Creates an edge-deletion update.
    #[must_use]
    pub fn deletion(src: VertexId, dst: VertexId) -> Self {
        Self { kind: UpdateKind::Deletion, src, dst, weight: 0.0 }
    }

    /// The edge this update refers to.
    #[must_use]
    pub fn edge(&self) -> Edge {
        Edge::new(self.src, self.dst, self.weight)
    }
}

/// Error building an [`UpdateBatch`].
///
/// (`Eq` is deliberately absent: [`BatchError::NonFiniteWeight`] carries
/// the offending `f32`, and NaN is not reflexively equal.)
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// The same `(src, dst)` pair appears in two conflicting updates.
    ConflictingUpdates {
        /// Source vertex of the conflicting pair.
        src: VertexId,
        /// Destination vertex of the conflicting pair.
        dst: VertexId,
    },
    /// An addition is a self-loop, which the streaming engines reject.
    SelfLoop {
        /// The looping vertex.
        vertex: VertexId,
    },
    /// An addition carries a NaN or infinite weight, which would poison
    /// every downstream algorithm state it touches.
    NonFiniteWeight {
        /// Source vertex of the offending addition.
        src: VertexId,
        /// Destination vertex of the offending addition.
        dst: VertexId,
        /// The non-finite weight as supplied.
        weight: Weight,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::ConflictingUpdates { src, dst } => {
                write!(f, "conflicting updates for edge ({src}, {dst}) in one batch")
            }
            BatchError::SelfLoop { vertex } => {
                write!(f, "self-loop addition on vertex {vertex}")
            }
            BatchError::NonFiniteWeight { src, dst, weight } => {
                write!(f, "non-finite weight {weight} on addition of edge ({src}, {dst})")
            }
        }
    }
}

impl Error for BatchError {}

/// A validated batch of streaming updates.
///
/// Invariants enforced at construction:
/// * no self-loop additions,
/// * no NaN / infinite addition weights,
/// * no `(src, dst)` pair appears with both an addition and a deletion
///   (the paper applies a batch atomically, so such a pair is ambiguous),
/// * duplicate identical updates are dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateBatch {
    updates: Vec<EdgeUpdate>,
}

/// The per-update violation [`UpdateBatch::from_updates`] rejects (strict)
/// and [`UpdateBatch::from_updates_lenient`] quarantines — one shared
/// check so the two modes act on exactly the same records.
fn check_update(
    u: &EdgeUpdate,
    pair_kind: &mut std::collections::HashMap<(VertexId, VertexId), UpdateKind>,
) -> Result<(), BatchError> {
    if u.kind == UpdateKind::Addition && u.src == u.dst {
        return Err(BatchError::SelfLoop { vertex: u.src });
    }
    if u.kind == UpdateKind::Addition && !u.weight.is_finite() {
        return Err(BatchError::NonFiniteWeight { src: u.src, dst: u.dst, weight: u.weight });
    }
    if let Some(&k) = pair_kind.get(&(u.src, u.dst)) {
        if k != u.kind {
            return Err(BatchError::ConflictingUpdates { src: u.src, dst: u.dst });
        }
    } else {
        pair_kind.insert((u.src, u.dst), u.kind);
    }
    Ok(())
}

impl UpdateBatch {
    /// Builds a batch from raw updates, validating and deduplicating.
    ///
    /// # Errors
    ///
    /// [`BatchError::SelfLoop`] for a self-loop addition,
    /// [`BatchError::NonFiniteWeight`] for an addition whose weight is NaN
    /// or infinite, and [`BatchError::ConflictingUpdates`] if one
    /// `(src, dst)` pair is both added and deleted in the same batch.
    pub fn from_updates(updates: Vec<EdgeUpdate>) -> Result<Self, BatchError> {
        let mut seen: HashSet<(VertexId, VertexId, UpdateKind)> = HashSet::new();
        let mut pair_kind: std::collections::HashMap<(VertexId, VertexId), UpdateKind> =
            std::collections::HashMap::new();
        let mut out = Vec::with_capacity(updates.len());
        for u in updates {
            check_update(&u, &mut pair_kind)?;
            if seen.insert((u.src, u.dst, u.kind)) {
                out.push(u);
            }
        }
        Ok(Self { updates: out })
    }

    /// Lenient variant of [`UpdateBatch::from_updates`]: each update
    /// strict mode would reject is skipped and recorded in `report`
    /// instead of failing the whole batch. Duplicates still collapse
    /// silently (a normalization, not a fault, in both modes).
    #[must_use]
    pub fn from_updates_lenient(updates: Vec<EdgeUpdate>, report: &mut QuarantineReport) -> Self {
        let mut seen: HashSet<(VertexId, VertexId, UpdateKind)> = HashSet::new();
        let mut pair_kind: std::collections::HashMap<(VertexId, VertexId), UpdateKind> =
            std::collections::HashMap::new();
        let mut out = Vec::with_capacity(updates.len());
        for u in updates {
            match check_update(&u, &mut pair_kind) {
                Ok(()) => {
                    if seen.insert((u.src, u.dst, u.kind)) {
                        out.push(u);
                    }
                }
                Err(e) => {
                    let reason = match e {
                        BatchError::SelfLoop { .. } => QuarantineReason::SelfLoop,
                        BatchError::NonFiniteWeight { .. } => QuarantineReason::NonFiniteWeight,
                        BatchError::ConflictingUpdates { .. } => {
                            QuarantineReason::ConflictingUpdate
                        }
                    };
                    report.record(reason, None, &e.to_string());
                }
            }
        }
        Self { updates: out }
    }

    /// The validated updates, in arrival order.
    #[must_use]
    pub fn updates(&self) -> &[EdgeUpdate] {
        &self.updates
    }

    /// Number of updates in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates only the additions.
    pub fn additions(&self) -> impl Iterator<Item = &EdgeUpdate> {
        self.updates.iter().filter(|u| u.kind == UpdateKind::Addition)
    }

    /// Iterates only the deletions.
    pub fn deletions(&self) -> impl Iterator<Item = &EdgeUpdate> {
        self.updates.iter().filter(|u| u.kind == UpdateKind::Deletion)
    }
}

/// Synthesizes the evaluation's update stream (§4.1): a pool of not-yet-loaded
/// edges provides additions; deletions are sampled from currently present
/// edges. `add_fraction` controls the Fig 24b composition sweep.
#[derive(Debug)]
pub struct BatchComposer {
    pending_additions: Vec<Edge>,
    rng: Xoshiro256StarStar,
    add_fraction: f64,
    /// Edges this stream has deleted and not since re-added. Callers that
    /// pass a stale `present_edges` pool (one not refreshed after every
    /// batch) would otherwise see the composer delete the same edge twice.
    deleted_in_stream: HashSet<(VertexId, VertexId)>,
}

impl BatchComposer {
    /// Creates a composer over the edges not loaded into the initial
    /// snapshot. `add_fraction` in `[0, 1]` is the share of additions per
    /// batch (paper default: mixed; Fig 24b sweeps 0..=1).
    ///
    /// # Panics
    ///
    /// Panics if `add_fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn new(pending_additions: Vec<Edge>, add_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&add_fraction),
            "add_fraction must be in [0,1], got {add_fraction}"
        );
        Self {
            pending_additions,
            rng: Xoshiro256StarStar::new(seed),
            add_fraction,
            deleted_in_stream: HashSet::new(),
        }
    }

    /// Number of additions still pending.
    #[must_use]
    pub fn remaining_additions(&self) -> usize {
        self.pending_additions.len()
    }

    /// Composes the next batch of up to `batch_size` updates. Deletion
    /// candidates are sampled (without replacement within the batch) from
    /// `present_edges`, excluding edges this stream already deleted in an
    /// earlier batch and has not re-added — so a caller that reuses a
    /// stale pool never sees the same edge deleted twice. Returns `None`
    /// once both the addition pool and the requested deletions are
    /// exhausted.
    pub fn next_batch(&mut self, batch_size: usize, present_edges: &[Edge]) -> Option<UpdateBatch> {
        if batch_size == 0 {
            return None;
        }
        let want_adds = ((batch_size as f64) * self.add_fraction).round() as usize;
        let want_adds = want_adds.min(self.pending_additions.len());
        let want_dels = (batch_size - want_adds).min(present_edges.len());
        if want_adds == 0 && want_dels == 0 {
            return None;
        }

        let mut updates = Vec::with_capacity(want_adds + want_dels);
        let mut touched: HashSet<(VertexId, VertexId)> = HashSet::new();
        for _ in 0..want_adds {
            let i = self.rng.next_index(self.pending_additions.len());
            let e = self.pending_additions.swap_remove(i);
            // Defensive normalization: a caller-supplied pool may carry
            // self-loops or non-finite weights the batch would reject.
            if e.src == e.dst || !e.weight.is_finite() {
                continue;
            }
            if touched.insert((e.src, e.dst)) {
                updates.push(EdgeUpdate::addition(e.src, e.dst, e.weight));
                self.deleted_in_stream.remove(&(e.src, e.dst));
            }
        }
        let mut attempts = 0;
        while updates.iter().filter(|u| u.kind == UpdateKind::Deletion).count() < want_dels
            && attempts < want_dels * 8
        {
            attempts += 1;
            let e = present_edges[self.rng.next_index(present_edges.len())];
            if self.deleted_in_stream.contains(&(e.src, e.dst)) {
                continue;
            }
            if touched.insert((e.src, e.dst)) {
                updates.push(EdgeUpdate::deletion(e.src, e.dst));
                self.deleted_in_stream.insert((e.src, e.dst));
            }
        }
        if updates.is_empty() {
            return None;
        }
        match UpdateBatch::from_updates(updates) {
            Ok(batch) => Some(batch),
            // The `touched` set and the sampling filters uphold every
            // batch invariant; surfacing a regression as stream
            // exhaustion would hide the bug, so fail loudly instead.
            Err(e) => unreachable!("composer produced an invalid batch: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_dedups_identical_updates() {
        let b = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(0, 1, 1.0),
            EdgeUpdate::addition(0, 1, 1.0),
        ])
        .unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn batch_rejects_self_loop_addition() {
        let err = UpdateBatch::from_updates(vec![EdgeUpdate::addition(3, 3, 1.0)]).unwrap_err();
        assert_eq!(err, BatchError::SelfLoop { vertex: 3 });
    }

    #[test]
    fn batch_rejects_add_delete_conflict() {
        let err = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(0, 1, 1.0),
            EdgeUpdate::deletion(0, 1),
        ])
        .unwrap_err();
        assert_eq!(err, BatchError::ConflictingUpdates { src: 0, dst: 1 });
    }

    #[test]
    fn additions_and_deletions_filters() {
        let b = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(0, 1, 1.0),
            EdgeUpdate::deletion(2, 3),
        ])
        .unwrap();
        assert_eq!(b.additions().count(), 1);
        assert_eq!(b.deletions().count(), 1);
    }

    #[test]
    fn composer_respects_fraction_and_pool() {
        let pool: Vec<Edge> = (0..100).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        let present: Vec<Edge> = (200..300).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        let mut c = BatchComposer::new(pool, 0.7, 42);
        let b = c.next_batch(20, &present).unwrap();
        let adds = b.additions().count();
        let dels = b.deletions().count();
        assert_eq!(adds, 14);
        assert!(dels <= 6 && dels > 0);
        assert_eq!(c.remaining_additions(), 86);
    }

    #[test]
    fn composer_all_additions_composition() {
        let pool: Vec<Edge> = (0..10).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        let mut c = BatchComposer::new(pool, 1.0, 1);
        let b = c.next_batch(100, &[]).unwrap();
        assert_eq!(b.additions().count(), 10);
        assert_eq!(b.deletions().count(), 0);
        assert!(c.next_batch(10, &[]).is_none());
    }

    #[test]
    fn composer_all_deletions_composition() {
        let present: Vec<Edge> = (0..50).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        let mut c = BatchComposer::new(vec![], 0.0, 1);
        let b = c.next_batch(10, &present).unwrap();
        assert_eq!(b.additions().count(), 0);
        assert!(b.deletions().count() > 0);
    }

    #[test]
    fn composer_exhaustion_returns_none() {
        let mut c = BatchComposer::new(vec![], 1.0, 1);
        assert!(c.next_batch(10, &[]).is_none());
        assert!(c.next_batch(0, &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "add_fraction")]
    fn composer_rejects_bad_fraction() {
        let _ = BatchComposer::new(vec![], 1.5, 1);
    }

    #[test]
    fn batch_rejects_nan_and_infinite_addition_weights() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = UpdateBatch::from_updates(vec![EdgeUpdate::addition(0, 1, bad)]).unwrap_err();
            assert!(
                matches!(err, BatchError::NonFiniteWeight { src: 0, dst: 1, .. }),
                "weight {bad}: got {err}"
            );
            assert!(err.to_string().contains("non-finite weight"));
        }
    }

    #[test]
    fn deletion_weight_is_ignored_by_the_finiteness_check() {
        // Deletions carry no meaningful weight; a hand-built NaN there
        // must not fail construction.
        let del = EdgeUpdate { kind: UpdateKind::Deletion, src: 0, dst: 1, weight: f32::NAN };
        assert!(UpdateBatch::from_updates(vec![del]).is_ok());
    }

    #[test]
    fn lenient_batch_quarantines_what_strict_rejects() {
        let updates = vec![
            EdgeUpdate::addition(0, 1, 1.0),
            EdgeUpdate::addition(2, 2, 1.0),      // self-loop
            EdgeUpdate::addition(3, 4, f32::NAN), // non-finite
            EdgeUpdate::addition(5, 6, 1.0),
            EdgeUpdate::deletion(5, 6), // conflict
        ];
        assert!(UpdateBatch::from_updates(updates.clone()).is_err());
        let mut q = QuarantineReport::new();
        let b = UpdateBatch::from_updates_lenient(updates, &mut q);
        assert_eq!(b.len(), 2, "the two good updates survive");
        assert_eq!(q.total(), 3);
        assert_eq!(q.count(QuarantineReason::SelfLoop), 1);
        assert_eq!(q.count(QuarantineReason::NonFiniteWeight), 1);
        assert_eq!(q.count(QuarantineReason::ConflictingUpdate), 1);
    }

    #[test]
    fn lenient_batch_on_clean_input_matches_strict() {
        let updates = vec![EdgeUpdate::addition(0, 1, 1.0), EdgeUpdate::deletion(2, 3)];
        let strict = UpdateBatch::from_updates(updates.clone()).unwrap();
        let mut q = QuarantineReport::new();
        let lenient = UpdateBatch::from_updates_lenient(updates, &mut q);
        assert!(q.is_empty());
        assert_eq!(lenient, strict);
    }

    #[test]
    fn composer_never_redeletes_with_a_stale_present_pool() {
        // Regression: with a pool that is never refreshed, every batch
        // used to be able to re-sample an edge deleted in an earlier
        // batch, producing a deletion for an already-absent edge.
        let stale: Vec<Edge> = (0..40).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        let mut c = BatchComposer::new(vec![], 0.0, 99);
        let mut seen: HashSet<(VertexId, VertexId)> = HashSet::new();
        for _ in 0..6 {
            let Some(b) = c.next_batch(8, &stale) else { break };
            for u in b.deletions() {
                assert!(
                    seen.insert((u.src, u.dst)),
                    "edge ({}, {}) deleted twice across the stream",
                    u.src,
                    u.dst
                );
            }
        }
        assert!(seen.len() > 8, "the stream must span multiple batches");
    }

    #[test]
    fn composer_allows_redeletion_after_readdition() {
        // Delete (0, 1) in batch 1, re-add it via the pending pool, then
        // a later batch may delete it again.
        let present = vec![Edge::new(0, 1, 1.0)];
        let mut c = BatchComposer::new(vec![Edge::new(0, 1, 2.0)], 0.0, 7);
        let b1 = c.next_batch(1, &present).unwrap();
        assert_eq!(b1.deletions().count(), 1);
        assert!(c.next_batch(1, &present).is_none(), "still-deleted edge is excluded");
        c.add_fraction = 1.0;
        let b2 = c.next_batch(1, &present).unwrap();
        assert_eq!(b2.additions().count(), 1);
        c.add_fraction = 0.0;
        let b3 = c.next_batch(1, &present).unwrap();
        assert_eq!(b3.deletions().count(), 1, "re-added edge is deletable again");
    }

    #[test]
    fn composer_skips_invalid_pool_edges() {
        let pool = vec![Edge::new(3, 3, 1.0), Edge::new(0, 1, f32::NAN)];
        let mut c = BatchComposer::new(pool, 1.0, 1);
        assert!(c.next_batch(4, &[]).is_none(), "only invalid pool edges → no batch");
    }
}
