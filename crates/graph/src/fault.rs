//! Deterministic data-plane fault injection.
//!
//! A [`FaultPlan`] corrupts inputs *on purpose*, below the sweep runner,
//! so the lenient-ingest and oracle machinery can be exercised end to end:
//! malformed and truncated edge-list lines, out-of-range vertex ids,
//! duplicate edges, deletions of absent edges, NaN / negative weights, and
//! mid-stream I/O errors. Every decision is drawn from the crate's own
//! [`Xoshiro256StarStar`] PRNG seeded per corruption site, so a plan is a
//! pure function of `(seed, input)` — the same plan over the same input
//! yields byte-identical corruption at any thread count.
//!
//! [`FaultPlan::none`] is the identity: every apply site checks
//! [`FaultPlan::is_noop`] first and returns the input untouched, so a run
//! with an empty plan is byte-identical to a run with no plan at all (the
//! test suite asserts this).

use std::io::{BufReader, Read};

use crate::prng::Xoshiro256StarStar;
use crate::types::{VertexId, Weight};
use crate::update::{EdgeUpdate, UpdateKind};

/// Seed-domain separator so batch-corruption streams never collide with
/// the text-corruption stream of the same plan.
const TEXT_DOMAIN: u64 = 0x7465_7874; // "text"
const BATCH_DOMAIN: u64 = 0x6261_7463; // "batc"

/// A deterministic recipe for corrupting data-plane inputs.
///
/// Each `f64` field is an independent per-record corruption probability in
/// `[0, 1]`. The plan is `Copy` so it can serve as a sweep axis; equality
/// compares the exact bit pattern of the probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed for every corruption decision.
    pub seed: u64,
    /// Per-line probability of replacing a data line with unparsable text.
    pub malformed_line: f64,
    /// Per-line probability of truncating a data line mid-token.
    pub truncated_line: f64,
    /// Per-record probability of rewriting a vertex id past the
    /// `VertexId` range (text) or past the vertex count (batches).
    pub out_of_range_id: f64,
    /// Per-record probability of emitting a duplicate of the record.
    pub duplicate_edge: f64,
    /// Per-record probability of replacing an addition's weight with NaN.
    pub nan_weight: f64,
    /// Per-line probability of negating a weight (a *semantic* corruption:
    /// both ingest modes accept it, and only the differential oracle can
    /// notice what it does to shortest paths).
    pub negative_weight: f64,
    /// Per-batch probability of injecting a deletion of an edge that is
    /// guaranteed absent (a self-edge — the store never holds one).
    pub absent_deletion: f64,
    /// Fail the reader with an injected I/O error after this many lines
    /// have been served (mid-stream; `None` disables).
    pub io_error_after: Option<usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The identity plan: corrupts nothing.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            malformed_line: 0.0,
            truncated_line: 0.0,
            out_of_range_id: 0.0,
            duplicate_edge: 0.0,
            nan_weight: 0.0,
            negative_weight: 0.0,
            absent_deletion: 0.0,
            io_error_after: None,
        }
    }

    /// A plan with `seed` and no faults armed; chain the builder methods
    /// to arm specific faults.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::none() }
    }

    /// Arms malformed-line corruption at probability `p`.
    #[must_use]
    pub fn with_malformed_lines(mut self, p: f64) -> Self {
        self.malformed_line = p;
        self
    }

    /// Arms line truncation at probability `p`.
    #[must_use]
    pub fn with_truncated_lines(mut self, p: f64) -> Self {
        self.truncated_line = p;
        self
    }

    /// Arms out-of-range vertex-id rewrites at probability `p`.
    #[must_use]
    pub fn with_out_of_range_ids(mut self, p: f64) -> Self {
        self.out_of_range_id = p;
        self
    }

    /// Arms duplicate-record emission at probability `p`.
    #[must_use]
    pub fn with_duplicate_edges(mut self, p: f64) -> Self {
        self.duplicate_edge = p;
        self
    }

    /// Arms NaN-weight corruption at probability `p`.
    #[must_use]
    pub fn with_nan_weights(mut self, p: f64) -> Self {
        self.nan_weight = p;
        self
    }

    /// Arms weight negation at probability `p`.
    #[must_use]
    pub fn with_negative_weights(mut self, p: f64) -> Self {
        self.negative_weight = p;
        self
    }

    /// Arms absent-edge deletions at per-batch probability `p`.
    #[must_use]
    pub fn with_absent_deletions(mut self, p: f64) -> Self {
        self.absent_deletion = p;
        self
    }

    /// Arms a mid-stream I/O failure after `lines` lines.
    #[must_use]
    pub fn with_io_error_after(mut self, lines: usize) -> Self {
        self.io_error_after = Some(lines);
        self
    }

    /// Whether this plan corrupts nothing (the identity).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.malformed_line == 0.0
            && self.truncated_line == 0.0
            && self.out_of_range_id == 0.0
            && self.duplicate_edge == 0.0
            && self.nan_weight == 0.0
            && self.negative_weight == 0.0
            && self.absent_deletion == 0.0
            && self.io_error_after.is_none()
    }

    /// Compact stable label for reports and trace events, e.g.
    /// `"faults[seed=7,nan=0.5,absdel=0.5]"`; `"none"` for the identity.
    #[must_use]
    pub fn describe(&self) -> String {
        if self.is_noop() {
            return "none".to_string();
        }
        let mut parts = vec![format!("seed={}", self.seed)];
        let mut p = |name: &str, v: f64| {
            if v > 0.0 {
                parts.push(format!("{name}={v}"));
            }
        };
        p("malformed", self.malformed_line);
        p("truncated", self.truncated_line);
        p("oor", self.out_of_range_id);
        p("dup", self.duplicate_edge);
        p("nan", self.nan_weight);
        p("neg", self.negative_weight);
        p("absdel", self.absent_deletion);
        if let Some(n) = self.io_error_after {
            parts.push(format!("io_after={n}"));
        }
        format!("faults[{}]", parts.join(","))
    }

    /// Corrupts edge-list text line by line (deterministic in `seed`).
    /// Comment and blank lines pass through untouched; each data line may
    /// be malformed, truncated, id-rewritten, weight-corrupted, or
    /// duplicated according to the armed probabilities.
    #[must_use]
    pub fn corrupt_text(&self, text: &str) -> String {
        if self.is_noop() {
            return text.to_string();
        }
        let mut rng = Xoshiro256StarStar::new(self.seed ^ TEXT_DOMAIN);
        let mut out = String::new();
        for line in text.lines() {
            let trimmed = line.trim();
            let is_data =
                !(trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%'));
            let corrupted = if is_data { self.corrupt_line(trimmed, &mut rng) } else { None };
            match corrupted {
                Some(lines) => {
                    for l in lines {
                        out.push_str(&l);
                        out.push('\n');
                    }
                }
                None => {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }

    /// One data line's corruption decision; `None` means pass through.
    fn corrupt_line(&self, line: &str, rng: &mut Xoshiro256StarStar) -> Option<Vec<String>> {
        if rng.next_f64() < self.malformed_line {
            return Some(vec![format!("?? {line} <corrupted>")]);
        }
        if rng.next_f64() < self.truncated_line {
            let cut = (line.len() / 2).max(1).min(line.len());
            return Some(vec![line[..cut].to_string()]);
        }
        if rng.next_f64() < self.out_of_range_id {
            let mut parts: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            if let Some(first) = parts.first_mut() {
                *first = (u64::from(VertexId::MAX) + 1 + rng.next_below(1024)).to_string();
            }
            return Some(vec![parts.join(" ")]);
        }
        if rng.next_f64() < self.nan_weight {
            let mut parts: Vec<&str> = line.split_whitespace().collect();
            parts.truncate(2);
            return Some(vec![format!("{} NaN", parts.join(" "))]);
        }
        if rng.next_f64() < self.negative_weight {
            let mut parts: Vec<&str> = line.split_whitespace().collect();
            parts.truncate(2);
            return Some(vec![format!("{} -{}", parts.join(" "), rng.next_below(8) + 1)]);
        }
        if rng.next_f64() < self.duplicate_edge {
            return Some(vec![line.to_string(), line.to_string()]);
        }
        None
    }

    /// Wraps corrupted text in a reader that additionally fails with an
    /// injected I/O error after `io_error_after` lines (when armed).
    #[must_use]
    pub fn corrupted_reader(&self, text: &str) -> BufReader<InterruptedRead> {
        let corrupted = self.corrupt_text(text);
        let fail_at = match self.io_error_after {
            Some(lines) => byte_offset_of_line(&corrupted, lines),
            None => usize::MAX,
        };
        BufReader::new(InterruptedRead::new(corrupted.into_bytes(), fail_at))
    }

    /// Corrupts one update batch's raw updates (deterministic in
    /// `(seed, batch_index)`): NaN weights on additions, out-of-range
    /// endpoints, duplicate records, and guaranteed-absent deletions.
    /// Returns the input untouched when the plan is a no-op.
    #[must_use]
    pub fn corrupt_updates(
        &self,
        batch_index: u64,
        updates: &[EdgeUpdate],
        vertex_count: usize,
    ) -> Vec<EdgeUpdate> {
        if self.is_noop() {
            return updates.to_vec();
        }
        let mut rng =
            Xoshiro256StarStar::new(self.seed ^ BATCH_DOMAIN ^ batch_index.wrapping_mul(0x9E37));
        let mut out = Vec::with_capacity(updates.len() + 2);
        for u in updates {
            let mut u = *u;
            if u.kind == UpdateKind::Addition && rng.next_f64() < self.nan_weight {
                u.weight = Weight::NAN;
            }
            if rng.next_f64() < self.out_of_range_id {
                u.dst = out_of_range_vertex(vertex_count, &mut rng);
            }
            out.push(u);
            if rng.next_f64() < self.duplicate_edge {
                out.push(u);
            }
        }
        if rng.next_f64() < self.absent_deletion {
            // A self-edge is never stored (self-loops are dropped on
            // insert), so deleting one is absent by construction.
            let v = if vertex_count == 0 { 0 } else { rng.next_index(vertex_count) as VertexId };
            out.push(EdgeUpdate::deletion(v, v));
        }
        out
    }
}

/// A vertex id guaranteed to be outside a graph of `vertex_count`.
fn out_of_range_vertex(vertex_count: usize, rng: &mut Xoshiro256StarStar) -> VertexId {
    let base = VertexId::try_from(vertex_count).unwrap_or(VertexId::MAX - 1024);
    base.saturating_add(rng.next_below(1024) as VertexId)
}

/// Byte offset of the start of 0-based line `line` in `text` (end of text
/// when past the last line).
fn byte_offset_of_line(text: &str, line: usize) -> usize {
    let mut offset = 0usize;
    for (i, l) in text.split_inclusive('\n').enumerate() {
        if i == line {
            return offset;
        }
        offset += l.len();
    }
    offset
}

/// A reader over an in-memory buffer that fails with an injected
/// [`std::io::Error`] once `fail_at` bytes have been served — the
/// mid-stream I/O fault of a [`FaultPlan`].
#[derive(Debug)]
pub struct InterruptedRead {
    data: Vec<u8>,
    pos: usize,
    fail_at: usize,
}

impl InterruptedRead {
    /// A reader over `data` that errors once `fail_at` bytes were read.
    #[must_use]
    pub fn new(data: Vec<u8>, fail_at: usize) -> Self {
        Self { data, pos: 0, fail_at }
    }
}

impl Read for InterruptedRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() && self.data.len() <= self.fail_at {
            return Ok(0); // clean EOF before the fault point
        }
        if self.pos >= self.fail_at {
            return Err(std::io::Error::other("injected i/o fault"));
        }
        let end = self.data.len().min(self.fail_at);
        let n = buf.len().min(end - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    #[test]
    fn noop_plan_is_the_identity_on_text_and_updates() {
        let plan = FaultPlan::none();
        assert!(plan.is_noop());
        assert_eq!(plan.describe(), "none");
        let text = "# header\n0 1\n1 2 3.5\n";
        assert_eq!(plan.corrupt_text(text), text);
        let updates = vec![EdgeUpdate::addition(0, 1, 1.0), EdgeUpdate::deletion(1, 2)];
        assert_eq!(plan.corrupt_updates(0, &updates, 8), updates);
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let plan = FaultPlan::seeded(7)
            .with_malformed_lines(0.3)
            .with_nan_weights(0.3)
            .with_duplicate_edges(0.3);
        let text: String = (0..50).map(|i| format!("{i} {} 1.0\n", i + 1)).collect();
        assert_eq!(plan.corrupt_text(&text), plan.corrupt_text(&text));
        let other = FaultPlan { seed: 8, ..plan };
        assert_ne!(plan.corrupt_text(&text), other.corrupt_text(&text));
        let updates: Vec<EdgeUpdate> =
            (0..40).map(|i| EdgeUpdate::addition(i, i + 1, 1.0)).collect();
        // Compare via Debug: injected NaN weights are never `==` themselves.
        let render = |us: Vec<EdgeUpdate>| format!("{us:?}");
        assert_eq!(
            render(plan.corrupt_updates(3, &updates, 64)),
            render(plan.corrupt_updates(3, &updates, 64))
        );
        assert_ne!(
            render(plan.corrupt_updates(3, &updates, 64)),
            render(plan.corrupt_updates(4, &updates, 64))
        );
    }

    #[test]
    fn armed_text_faults_do_corrupt() {
        let text: String = (0..100).map(|i| format!("{i} {}\n", i + 1)).collect();
        let malformed = FaultPlan::seeded(1).with_malformed_lines(1.0).corrupt_text(&text);
        assert!(malformed.lines().all(|l| l.starts_with("??")));
        let dup = FaultPlan::seeded(1).with_duplicate_edges(1.0).corrupt_text(&text);
        assert_eq!(dup.lines().count(), 200);
        let oor = FaultPlan::seeded(1).with_out_of_range_ids(1.0).corrupt_text("3 4\n");
        let first: u64 = oor.split_whitespace().next().unwrap().parse().unwrap();
        assert!(first > u64::from(VertexId::MAX));
        let nan = FaultPlan::seeded(1).with_nan_weights(1.0).corrupt_text("3 4 2.0\n");
        assert!(nan.contains("NaN"));
        let neg = FaultPlan::seeded(1).with_negative_weights(1.0).corrupt_text("3 4 2.0\n");
        assert!(neg.split_whitespace().nth(2).unwrap().starts_with('-'));
    }

    #[test]
    fn comments_and_blanks_pass_through() {
        let plan = FaultPlan::seeded(1).with_malformed_lines(1.0);
        let out = plan.corrupt_text("# keep me\n\n0 1\n");
        assert!(out.starts_with("# keep me\n\n"));
        assert!(out.lines().nth(2).unwrap().starts_with("??"));
    }

    #[test]
    fn absent_deletion_targets_self_edges() {
        let plan = FaultPlan::seeded(9).with_absent_deletions(1.0);
        let out = plan.corrupt_updates(0, &[EdgeUpdate::addition(0, 1, 1.0)], 16);
        let last = out.last().unwrap();
        assert_eq!(last.kind, UpdateKind::Deletion);
        assert_eq!(last.src, last.dst, "guaranteed-absent deletion is a self-edge");
    }

    #[test]
    fn out_of_range_updates_leave_the_vertex_range() {
        let plan = FaultPlan::seeded(2).with_out_of_range_ids(1.0);
        let out = plan.corrupt_updates(0, &[EdgeUpdate::addition(0, 1, 1.0)], 10);
        assert!(out.iter().any(|u| u.dst as usize >= 10));
    }

    #[test]
    fn interrupted_reader_fails_mid_stream() {
        let plan = FaultPlan::seeded(0).with_io_error_after(2);
        let mut reader = plan.corrupted_reader("0 1\n1 2\n2 3\n3 4\n");
        let mut line = String::new();
        assert!(reader.read_line(&mut line).is_ok());
        line.clear();
        assert!(reader.read_line(&mut line).is_ok());
        line.clear();
        let err = reader.read_line(&mut line).unwrap_err();
        assert!(err.to_string().contains("injected"));
    }

    #[test]
    fn reader_without_fault_reads_to_eof() {
        let plan = FaultPlan::none();
        let mut reader = plan.corrupted_reader("0 1\n1 2\n");
        let mut all = String::new();
        reader.read_to_string(&mut all).unwrap();
        assert_eq!(all, "0 1\n1 2\n");
    }

    #[test]
    fn describe_lists_armed_faults() {
        let plan = FaultPlan::seeded(5).with_nan_weights(0.25).with_io_error_after(10);
        let d = plan.describe();
        assert!(d.contains("seed=5") && d.contains("nan=0.25") && d.contains("io_after=10"));
    }
}
