//! Wire framing for streaming edge updates, and the record/replay
//! schedule format built on top of it.
//!
//! The streaming service speaks JSON lines over a byte stream. This module
//! owns the data-plane half of that surface: one [`EdgeUpdate`] per line,
//! parsed leniently enough to survive hostile traffic (a malformed line is
//! a value, not a panic) but strictly enough that every accepted line
//! round-trips byte-identically through [`format_update_line`] /
//! [`parse_update_line`].
//!
//! A [`RecordedSchedule`] is the replayable transcript of an ingest
//! session: the exact sequence of formed batches, each batch the exact
//! sequence of accepted updates and quarantined malformed lines, in
//! arrival order. Replaying a recorded schedule offline through the same
//! lenient-ingest path reproduces the live run byte for byte — reports,
//! quarantine evidence, and observability snapshots included.
//!
//! Weights are rendered with Rust's shortest-round-trip float formatting,
//! so `parse(format(w)) == w` exactly for every finite weight. Non-finite
//! weights (`NaN`, `inf`) — which fault injection deliberately produces —
//! are rendered and re-parsed too; such lines are not strictly JSON, but
//! the framing accepts them so that corruption reaches the batch-level
//! quarantine (`NonFiniteWeight`) instead of dying at the transport.

use std::fmt;

use crate::quarantine::truncate_detail;
use crate::types::{VertexId, Weight};
use crate::update::{EdgeUpdate, UpdateKind};

/// Why a wire line failed to parse as an edge update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable reason, bounded in length.
    pub detail: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire line: {}", self.detail)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    fn new(detail: impl Into<String>) -> Self {
        Self { detail: truncate_detail(&detail.into()) }
    }
}

/// Replaces control characters (except tab) with spaces so a detail string
/// survives a JSON-line round trip unchanged. [`json_escape_wire`] and
/// [`json_unescape_wire`] are exact inverses on sanitized strings.
#[must_use]
pub fn sanitize_detail(s: &str) -> String {
    truncate_detail(s)
        .chars()
        .map(|c| if (c as u32) < 0x20 && c != '\t' { ' ' } else { c })
        .collect()
}

/// Escapes a sanitized string for embedding in a wire JSON line.
#[must_use]
pub fn json_escape_wire(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`json_escape_wire`].
#[must_use]
pub fn json_unescape_wire(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Splits one flat JSON object (`{"k":v,...}`) into `(key, raw value)`
/// pairs. Values are returned as raw token text — still quoted for
/// strings. Nested objects and arrays are rejected: the whole wire surface
/// is deliberately flat.
///
/// # Errors
///
/// A bounded human-readable reason when the line is not a flat object.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {}", truncate_detail(line)))?;
    let mut fields = Vec::new();
    // Split on commas outside quotes (values may contain escaped quotes).
    let mut depth_quote = false;
    let mut escaped = false;
    let mut start = 0usize;
    let bytes = body.as_bytes();
    let mut cuts = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if depth_quote => escaped = true,
            b'"' => depth_quote = !depth_quote,
            b'[' | b']' | b'{' | b'}' if !depth_quote => {
                return Err(format!("nested value in wire line: {}", truncate_detail(line)));
            }
            b',' if !depth_quote => cuts.push(i),
            _ => {}
        }
    }
    cuts.push(body.len());
    for cut in cuts {
        let pair = &body[start..cut];
        start = cut + 1;
        if pair.trim().is_empty() {
            continue;
        }
        let (k, v) =
            pair.split_once(':').ok_or_else(|| format!("malformed field '{}'", pair.trim()))?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key '{}'", k.trim()))?;
        fields.push((key.to_string(), v.trim().to_string()));
    }
    Ok(fields)
}

/// Looks up a field in a parsed flat object.
///
/// # Errors
///
/// When the key is absent.
pub fn lookup<'a>(fields: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field '{key}'"))
}

/// Looks up a string-typed field (strips the surrounding quotes and
/// un-escapes it).
///
/// # Errors
///
/// When the key is absent or the value is not quoted.
pub fn lookup_str(fields: &[(String, String)], key: &str) -> Result<String, String> {
    let raw = lookup(fields, key)?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(json_unescape_wire)
        .ok_or_else(|| format!("field '{key}' is not a string: {raw}"))
}

/// Renders one [`EdgeUpdate`] as a wire JSON line (no trailing newline):
/// `{"op":"add","src":1,"dst":2,"weight":1.5}` for additions,
/// `{"op":"del","src":1,"dst":2}` for deletions.
#[must_use]
pub fn format_update_line(u: &EdgeUpdate) -> String {
    match u.kind {
        UpdateKind::Addition => {
            format!(
                "{{\"op\":\"add\",\"src\":{},\"dst\":{},\"weight\":{}}}",
                u.src, u.dst, u.weight
            )
        }
        UpdateKind::Deletion => {
            format!("{{\"op\":\"del\",\"src\":{},\"dst\":{}}}", u.src, u.dst)
        }
    }
}

/// Parses one wire line into an [`EdgeUpdate`].
///
/// Accepts exactly the [`format_update_line`] shape: `op` is `"add"` or
/// `"del"`, `src`/`dst` are `u32`, `weight` is a float (optional for
/// deletions, default `1.0` for additions when absent). Non-finite weights
/// parse — downstream batch validation quarantines them, which is the
/// lenient-ingest front door working as intended.
///
/// # Errors
///
/// [`WireError`] with a bounded detail when the line does not frame.
pub fn parse_update_line(line: &str) -> Result<EdgeUpdate, WireError> {
    let fields = parse_flat_object(line).map_err(WireError::new)?;
    let op = lookup_str(&fields, "op").map_err(WireError::new)?;
    let id = |key: &str| -> Result<VertexId, WireError> {
        lookup(&fields, key)
            .and_then(|raw| {
                raw.parse::<VertexId>().map_err(|e| format!("field '{key}' is not a vertex: {e}"))
            })
            .map_err(WireError::new)
    };
    let src = id("src")?;
    let dst = id("dst")?;
    match op.as_str() {
        "add" => {
            let weight = match lookup(&fields, "weight") {
                Ok(raw) => raw
                    .parse::<Weight>()
                    .map_err(|e| WireError::new(format!("field 'weight' is not a number: {e}")))?,
                Err(_) => 1.0,
            };
            Ok(EdgeUpdate::addition(src, dst, weight))
        }
        "del" => Ok(EdgeUpdate::deletion(src, dst)),
        other => Err(WireError::new(format!("unknown op '{other}'"))),
    }
}

/// One entry of a recorded ingest batch, in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordedEntry {
    /// A wire line that parsed; the update entered the batch former.
    Update(EdgeUpdate),
    /// A wire line that did not parse; lenient ingest quarantined it.
    /// Carries the sanitized, bounded detail that was quarantined.
    Malformed(String),
    /// A wire line cut short by connection loss (EOF arrived mid-line, or
    /// a torn write at a crash). Lenient ingest quarantines the fragment
    /// as [`crate::quarantine::QuarantineReason::TruncatedLine`]. Kept
    /// distinct from [`RecordedEntry::Malformed`] so resume offsets can
    /// exclude fragments: a reconnecting client re-sends the whole line,
    /// and the fragment stays behind as evidence.
    Truncated(String),
}

/// The replayable transcript of one tenant's ingest session: formed
/// batches in close order, each holding its entries in arrival order.
///
/// The schedule is the determinism contract of the streaming service:
/// feeding a recorded schedule through the offline harness reproduces the
/// live run byte for byte.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordedSchedule {
    batches: Vec<Vec<RecordedEntry>>,
}

impl RecordedSchedule {
    /// An empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one closed batch.
    pub fn push_batch(&mut self, entries: Vec<RecordedEntry>) {
        self.batches.push(entries);
    }

    /// The recorded batches, in close order.
    #[must_use]
    pub fn batches(&self) -> &[Vec<RecordedEntry>] {
        &self.batches
    }

    /// Number of recorded batches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total accepted updates across batches.
    #[must_use]
    pub fn update_count(&self) -> usize {
        self.batches
            .iter()
            .map(|b| b.iter().filter(|e| matches!(e, RecordedEntry::Update(_))).count())
            .sum()
    }

    /// Total quarantined malformed lines across batches.
    #[must_use]
    pub fn malformed_count(&self) -> usize {
        self.batches
            .iter()
            .map(|b| b.iter().filter(|e| matches!(e, RecordedEntry::Malformed(_))).count())
            .sum()
    }

    /// Total truncated-line fragments across batches.
    #[must_use]
    pub fn truncated_count(&self) -> usize {
        self.batches
            .iter()
            .map(|b| b.iter().filter(|e| matches!(e, RecordedEntry::Truncated(_))).count())
            .sum()
    }

    /// Serializes the schedule as JSON lines: each entry becomes one line
    /// tagged with its 0-based batch index —
    /// `{"batch":0,"op":"add","src":1,"dst":2,"weight":1}` or
    /// `{"batch":0,"malformed":"<detail>"}`. An empty batch (possible when
    /// a latency deadline fires with only quarantined lines buffered)
    /// serializes as `{"batch":N,"empty":true}` so replay preserves batch
    /// boundaries exactly.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, batch) in self.batches.iter().enumerate() {
            if batch.is_empty() {
                out.push_str(&format!("{{\"batch\":{i},\"empty\":true}}\n"));
                continue;
            }
            for entry in batch {
                match entry {
                    RecordedEntry::Update(u) => {
                        let body = format_update_line(u);
                        let rest = body.strip_prefix('{').unwrap_or(&body);
                        out.push_str(&format!("{{\"batch\":{i},{rest}\n"));
                    }
                    RecordedEntry::Malformed(detail) => {
                        out.push_str(&format!(
                            "{{\"batch\":{i},\"malformed\":\"{}\"}}\n",
                            json_escape_wire(detail)
                        ));
                    }
                    RecordedEntry::Truncated(detail) => {
                        out.push_str(&format!(
                            "{{\"batch\":{i},\"truncated\":\"{}\"}}\n",
                            json_escape_wire(detail)
                        ));
                    }
                }
            }
        }
        out
    }

    /// Parses a schedule back from its [`RecordedSchedule::to_jsonl`]
    /// form. Round-trips exactly: `from_jsonl(to_jsonl(s)) == s`.
    ///
    /// # Errors
    ///
    /// A bounded human-readable reason on the first malformed or
    /// out-of-order line.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut schedule = Self::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = parse_flat_object(line)?;
            let batch: usize = lookup(&fields, "batch")?
                .parse()
                .map_err(|e| format!("field 'batch' is not an index: {e}"))?;
            if batch == schedule.batches.len() {
                schedule.batches.push(Vec::new());
            } else if batch + 1 != schedule.batches.len() {
                return Err(format!(
                    "batch index {batch} out of order (at batch {})",
                    schedule.batches.len()
                ));
            }
            if lookup(&fields, "empty").is_ok() {
                continue;
            }
            let entry = if let Ok(detail) = lookup_str(&fields, "malformed") {
                RecordedEntry::Malformed(detail)
            } else if let Ok(detail) = lookup_str(&fields, "truncated") {
                RecordedEntry::Truncated(detail)
            } else {
                RecordedEntry::Update(parse_update_line(line).map_err(|e| e.detail)?)
            };
            if let Some(last) = schedule.batches.last_mut() {
                last.push(entry);
            }
        }
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_lines_round_trip_byte_identically() {
        let updates = [
            EdgeUpdate::addition(0, 1, 1.0),
            EdgeUpdate::addition(7, 42, 0.123_456_79),
            EdgeUpdate::addition(1, 2, f32::NAN),
            EdgeUpdate::addition(1, 3, f32::INFINITY),
            EdgeUpdate::deletion(99, 3),
        ];
        for u in updates {
            let line = format_update_line(&u);
            let parsed = parse_update_line(&line).unwrap();
            assert_eq!(format_update_line(&parsed), line, "re-render differs for {line}");
            assert_eq!(parsed.kind, u.kind);
            assert_eq!((parsed.src, parsed.dst), (u.src, u.dst));
            assert!(parsed.weight == u.weight || (parsed.weight.is_nan() && u.weight.is_nan()));
        }
    }

    #[test]
    fn addition_weight_defaults_to_one() {
        let u = parse_update_line("{\"op\":\"add\",\"src\":3,\"dst\":4}").unwrap();
        assert_eq!(u.weight, 1.0);
        assert_eq!(u.kind, UpdateKind::Addition);
    }

    #[test]
    fn hostile_lines_are_bounded_errors() {
        let cases = [
            "",
            "garbage",
            "{\"op\":\"add\"}",
            "{\"op\":\"frobnicate\",\"src\":1,\"dst\":2}",
            "{\"op\":\"add\",\"src\":-1,\"dst\":2}",
            "{\"op\":\"add\",\"src\":1,\"dst\":99999999999}",
            "{\"op\":\"add\",\"src\":1,\"dst\":2,\"weight\":\"lots\"}",
            "{\"op\":[1,2],\"src\":1,\"dst\":2}",
        ];
        for line in cases {
            let err = parse_update_line(line).unwrap_err();
            assert!(err.detail.chars().count() <= 200, "unbounded detail for {line:?}");
        }
        let huge =
            format!("{{\"op\":\"add\",\"src\":1,\"dst\":2,\"junk\":\"{}\"", "x".repeat(4096));
        let err = parse_update_line(&huge).unwrap_err();
        assert!(err.detail.chars().count() <= 200);
    }

    #[test]
    fn sanitize_is_idempotent_and_escape_round_trips() {
        let hostile = "a\"b\\c\td\u{1}e\n";
        let clean = sanitize_detail(hostile);
        assert_eq!(sanitize_detail(&clean), clean);
        assert_eq!(json_unescape_wire(&json_escape_wire(&clean)), clean);
        // Truncation inside sanitize is also idempotent.
        let long = "y".repeat(500);
        let t = sanitize_detail(&long);
        assert_eq!(sanitize_detail(&t), t);
    }

    #[test]
    fn schedule_round_trips() {
        let mut s = RecordedSchedule::new();
        s.push_batch(vec![
            RecordedEntry::Update(EdgeUpdate::addition(0, 1, 2.5)),
            RecordedEntry::Malformed(sanitize_detail("not json at all")),
            RecordedEntry::Update(EdgeUpdate::deletion(4, 5)),
        ]);
        s.push_batch(Vec::new());
        s.push_batch(vec![RecordedEntry::Update(EdgeUpdate::addition(9, 10, f32::NAN))]);
        let text = s.to_jsonl();
        let parsed = RecordedSchedule::from_jsonl(&text).unwrap();
        // NaN breaks PartialEq on the schedule, so compare serialized form.
        assert_eq!(parsed.to_jsonl(), text);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed.update_count(), 3);
        assert_eq!(parsed.malformed_count(), 1);
    }

    #[test]
    fn schedule_rejects_out_of_order_batches() {
        let text = "{\"batch\":1,\"op\":\"add\",\"src\":0,\"dst\":1,\"weight\":1}\n";
        assert!(RecordedSchedule::from_jsonl(text).is_err());
    }

    #[test]
    fn flat_parser_rejects_nesting_and_handles_quoted_commas() {
        assert!(parse_flat_object("{\"a\":{\"b\":1}}").is_err());
        assert!(parse_flat_object("{\"a\":[1,2]}").is_err());
        let fields = parse_flat_object("{\"a\":\"x,y\",\"b\":2}").unwrap();
        assert_eq!(lookup_str(&fields, "a").unwrap(), "x,y");
        assert_eq!(lookup(&fields, "b").unwrap(), "2");
    }
}
