//! Synthetic stand-ins for the paper's six SNAP datasets (Table 2).
//!
//! The SNAP graphs cannot be shipped, so each dataset is replaced by a
//! seeded R-MAT graph whose vertex count, average degree, and skew are
//! scaled-down matches of the original (substitution documented in
//! DESIGN.md §3). Every profile carries the paper's published statistics so
//! the Table 2 runner can print paper-vs-generated side by side.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::generate::{ClusteredRmat, RmatConfig};
use crate::prng::Xoshiro256StarStar;
use crate::streaming::StreamingGraph;
use crate::types::Edge;

/// The six evaluation datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// com-Amazon (AZ).
    Amazon,
    /// com-DBLP (DL).
    Dblp,
    /// ego-Gplus (GL).
    Gplus,
    /// LiveJournal (LJ).
    LiveJournal,
    /// Orkut (OR).
    Orkut,
    /// Friendster (FR).
    Friendster,
}

impl Dataset {
    /// All six datasets in Table 2 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Amazon,
        Dataset::Dblp,
        Dataset::Gplus,
        Dataset::LiveJournal,
        Dataset::Orkut,
        Dataset::Friendster,
    ];

    /// The paper's two-letter abbreviation.
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::Amazon => "AZ",
            Dataset::Dblp => "DL",
            Dataset::Gplus => "GL",
            Dataset::LiveJournal => "LJ",
            Dataset::Orkut => "OR",
            Dataset::Friendster => "FR",
        }
    }

    /// Statistics the paper reports in Table 2.
    #[must_use]
    pub fn paper_stats(self) -> PaperStats {
        match self {
            Dataset::Amazon => PaperStats::new("com-Amazon", 334_863, 925_872, 44, 6),
            Dataset::Dblp => PaperStats::new("com-DBLP", 317_080, 1_049_866, 21, 7),
            Dataset::Gplus => PaperStats::new("ego-Gplus", 2_394_385, 5_021_410, 9, 2),
            Dataset::LiveJournal => PaperStats::new("LiveJournal", 4_847_571, 68_993_773, 17, 17),
            Dataset::Orkut => PaperStats::new("Orkut", 3_072_441, 117_185_083, 9, 76),
            Dataset::Friendster => PaperStats::new("Friendster", 65_608_366, 1_806_067_135, 32, 29),
        }
    }

    /// The scaled clustered-R-MAT profile used for simulation at the given
    /// sizing: per-community scale and edge factor track the dataset's
    /// relative size and density; the community count tracks its Table 2
    /// diameter (clusters ≈ d/2), which pure R-MAT cannot reproduce.
    #[must_use]
    pub fn profile(self, sizing: Sizing) -> ClusteredRmat {
        let (scale, ef, clusters, seed) = match self {
            Dataset::Amazon => (9, 3, 16, 0xA2),
            Dataset::Dblp => (9, 4, 10, 0xD1),
            Dataset::Gplus => (12, 2, 4, 0x61),
            Dataset::LiveJournal => (11, 14, 8, 0x17),
            Dataset::Orkut => (11, 38, 4, 0x0F),
            Dataset::Friendster => (11, 27, 12, 0xF2),
        };
        let shift = match sizing {
            Sizing::Reference => 0,
            Sizing::Small => 2,
            Sizing::Tiny => 4,
        };
        let scale = (scale - shift).max(4);
        let community = RmatConfig::new(scale, ef).with_seed(seed);
        ClusteredRmat::new(community, clusters, (community.vertex_count() / 8).max(4))
    }
}

/// Sizing presets for the scaled datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sizing {
    /// Default simulation size (used by the experiments binary).
    Reference,
    /// 8× fewer vertices (criterion benches).
    Small,
    /// 64× fewer vertices (unit/integration tests).
    Tiny,
}

/// Statistics of the original SNAP graph, as printed in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperStats {
    /// Full SNAP name.
    pub name: &'static str,
    /// Vertex count in the paper.
    pub vertices: u64,
    /// Edge count in the paper.
    pub edges: u64,
    /// Reported diameter `d`.
    pub diameter: u32,
    /// Reported average degree `D̄`.
    pub avg_degree: u32,
}

impl PaperStats {
    const fn new(
        name: &'static str,
        vertices: u64,
        edges: u64,
        diameter: u32,
        avg_degree: u32,
    ) -> Self {
        Self { name, vertices, edges, diameter, avg_degree }
    }
}

/// A fully prepared streaming workload: the initial 50 %-loaded graph plus
/// the edge pool that streams in afterwards (§4.1 methodology).
///
/// `Clone` lets one generated workload drive several timed runs (the
/// parallel bench replays the same cell under every exec mode).
#[derive(Debug, Clone)]
pub struct StreamingWorkload {
    /// Graph pre-loaded with 50 % of the edges.
    pub graph: StreamingGraph,
    /// Remaining edges, streamed in as additions.
    pub pending: Vec<Edge>,
    /// The dataset this came from.
    pub dataset: Dataset,
}

impl StreamingWorkload {
    /// Builds the workload for `dataset` at `sizing`: generate the
    /// clustered-R-MAT edge list, shuffle the edges with the dataset seed,
    /// and load the first half. Vertex ids keep their community locality
    /// (SNAP crawl ids are similarly community-local), which the paper's
    /// contiguous-range chunking relies on.
    #[must_use]
    pub fn prepare(dataset: Dataset, sizing: Sizing) -> Self {
        match Self::try_prepare(dataset, sizing) {
            Ok(w) => w,
            Err(e) => panic!("generated workload for {dataset:?} is invalid: {e}"),
        }
    }

    /// Like [`StreamingWorkload::prepare`] but returns construction errors
    /// as data instead of panicking. Generated profiles are in bounds by
    /// construction, so this only fails if a generator invariant is broken —
    /// sweep cells use it so even that failure stays contained to one cell.
    ///
    /// # Errors
    ///
    /// [`GraphError::Apply`] if an edge endpoint falls outside the profile's
    /// vertex range.
    pub fn try_prepare(dataset: Dataset, sizing: Sizing) -> Result<Self, GraphError> {
        let cfg = dataset.profile(sizing);
        let mut edges = cfg.edges();
        let mut rng = Xoshiro256StarStar::new(cfg.community.seed ^ 0x5EED);
        rng.shuffle(&mut edges);
        let half = edges.len() / 2;
        let pending = edges.split_off(half);
        let mut graph = StreamingGraph::with_capacity(cfg.vertex_count());
        graph.insert_edges(edges)?;
        Ok(Self { graph, pending, dataset })
    }

    /// Default batch size: the paper uses 100 K updates on full-size graphs;
    /// we scale it to 1/16 of the loaded edge count, floored at 64.
    #[must_use]
    pub fn default_batch_size(&self) -> usize {
        (self.graph.edge_count() / 16).max(64)
    }

    /// Snapshot of the initial (50 %-loaded) graph.
    #[must_use]
    pub fn initial_snapshot(&self) -> Csr {
        self.graph.snapshot()
    }

    /// Builds a workload from caller-provided edges (e.g. a real SNAP file
    /// loaded through [`crate::io::load_edge_list`]): shuffles with `seed`
    /// and loads the first half, exactly like [`StreamingWorkload::prepare`].
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= vertex_count`. Caller-provided
    /// data should prefer [`StreamingWorkload::try_from_edges`], which
    /// reports the offending vertex instead.
    #[must_use]
    pub fn from_edges(edges: Vec<Edge>, vertex_count: usize, seed: u64) -> Self {
        match Self::try_from_edges(edges, vertex_count, seed) {
            Ok(w) => w,
            Err(e) => panic!("caller-provided edges are out of bounds: {e}"),
        }
    }

    /// Fallible form of [`StreamingWorkload::from_edges`] for untrusted
    /// input: an endpoint outside `0..vertex_count` becomes a typed error
    /// instead of a panic, so a bad dataset fails one sweep cell rather
    /// than the whole process.
    ///
    /// # Errors
    ///
    /// [`GraphError::Apply`] naming the out-of-range vertex.
    pub fn try_from_edges(
        mut edges: Vec<Edge>,
        vertex_count: usize,
        seed: u64,
    ) -> Result<Self, GraphError> {
        let mut rng = Xoshiro256StarStar::new(seed ^ 0x5EED);
        rng.shuffle(&mut edges);
        let half = edges.len() / 2;
        let pending = edges.split_off(half);
        let mut graph = StreamingGraph::with_capacity(vertex_count);
        graph.insert_edges(edges)?;
        // Pending edges stream in later; validate them now so the failure
        // surfaces at construction, not mid-run.
        for e in &pending {
            if e.src as usize >= vertex_count || e.dst as usize >= vertex_count {
                let vertex = if e.src as usize >= vertex_count { e.src } else { e.dst };
                return Err(crate::streaming::ApplyError::VertexOutOfBounds {
                    vertex,
                    vertex_count,
                }
                .into());
            }
        }
        // Dataset tag is nominal for external data.
        Ok(Self { graph, pending, dataset: Dataset::Friendster })
    }

    /// The highest-out-degree vertex of the loaded graph — the natural
    /// SSSP source (reaches the most of the graph, like the hub sources
    /// the streaming-graph evaluations use).
    #[must_use]
    pub fn hub_vertex(&self) -> u32 {
        let snap = self.graph.snapshot();
        (0..snap.vertex_count() as u32).max_by_key(|&v| snap.degree(v)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_generate() {
        for d in Dataset::ALL {
            let cfg = d.profile(Sizing::Tiny);
            let edges = cfg.edges();
            assert!(!edges.is_empty(), "{d:?} generated no edges");
        }
    }

    #[test]
    fn paper_stats_match_table2() {
        let fr = Dataset::Friendster.paper_stats();
        assert_eq!(fr.vertices, 65_608_366);
        assert_eq!(fr.edges, 1_806_067_135);
        assert_eq!(fr.diameter, 32);
        let az = Dataset::Amazon.paper_stats();
        assert_eq!(az.name, "com-Amazon");
        assert_eq!(az.avg_degree, 6);
    }

    #[test]
    fn relative_density_ordering_follows_paper() {
        // Orkut is the densest dataset in the paper; Gplus the sparsest.
        let d_or = Dataset::Orkut.profile(Sizing::Tiny);
        let d_gl = Dataset::Gplus.profile(Sizing::Tiny);
        assert!(d_or.community.edge_factor > d_gl.community.edge_factor);
    }

    #[test]
    fn workload_loads_half_the_edges() {
        let w = StreamingWorkload::prepare(Dataset::Amazon, Sizing::Tiny);
        let loaded = w.graph.edge_count();
        let pending = w.pending.len();
        // Duplicates collapse in the graph, so loaded <= pending + slack.
        assert!(loaded > 0 && pending > 0);
        let ratio = loaded as f64 / (loaded + pending) as f64;
        assert!((0.30..=0.60).contains(&ratio), "load ratio {ratio} far from half");
    }

    #[test]
    fn workload_is_deterministic() {
        let a = StreamingWorkload::prepare(Dataset::Dblp, Sizing::Tiny);
        let b = StreamingWorkload::prepare(Dataset::Dblp, Sizing::Tiny);
        assert_eq!(a.pending, b.pending);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn default_batch_size_has_floor() {
        let w = StreamingWorkload::prepare(Dataset::Amazon, Sizing::Tiny);
        assert!(w.default_batch_size() >= 64);
    }

    #[test]
    fn try_from_edges_rejects_out_of_range_endpoints() {
        let edges: Vec<Edge> = (0..8).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        // vertex_count 4 leaves ids 4..=8 out of range; half land in the
        // loaded graph, half in the pending pool — both must be caught.
        let err = StreamingWorkload::try_from_edges(edges, 4, 7).unwrap_err();
        assert!(matches!(err, GraphError::Apply(_)), "got {err}");
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn try_from_edges_accepts_in_range_edges() {
        let edges: Vec<Edge> = (0..8).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        let w = StreamingWorkload::try_from_edges(edges, 16, 7).unwrap();
        assert_eq!(w.graph.edge_count() + w.pending.len(), 8);
    }

    #[test]
    fn try_prepare_matches_prepare() {
        let a = StreamingWorkload::prepare(Dataset::Amazon, Sizing::Tiny);
        let b = StreamingWorkload::try_prepare(Dataset::Amazon, Sizing::Tiny).unwrap();
        assert_eq!(a.pending, b.pending);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn abbrevs_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for d in Dataset::ALL {
            assert!(seen.insert(d.abbrev()));
        }
    }
}
