//! Mutable streaming-graph store.
//!
//! [`StreamingGraph`] owns the evolving adjacency structure, applies
//! [`UpdateBatch`]es atomically, and materializes immutable [`Csr`]
//! snapshots for the engines (the paper regenerates a CSR snapshot per
//! batch, §2.1/§3.3.1). Applying a batch reports the *affected vertices* —
//! the destination endpoints of added/deleted edges — which seed the
//! incremental computation as the initial active set (§3.2.1).

use std::error::Error;
use std::fmt;

use crate::csr::Csr;
use crate::quarantine::{QuarantineReason, QuarantineReport};
use crate::types::{Edge, EdgeCount, VertexCount, VertexId, Weight};
use crate::update::{UpdateBatch, UpdateKind};

/// Error applying a batch to a [`StreamingGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// An endpoint id is outside the graph's vertex range.
    VertexOutOfBounds {
        /// Offending vertex id.
        vertex: VertexId,
        /// Current vertex count.
        vertex_count: VertexCount,
    },
    /// A deletion referenced an edge that is not present.
    MissingEdge {
        /// Source of the missing edge.
        src: VertexId,
        /// Destination of the missing edge.
        dst: VertexId,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::VertexOutOfBounds { vertex, vertex_count } => {
                write!(f, "vertex {vertex} out of bounds for graph with {vertex_count} vertices")
            }
            ApplyError::MissingEdge { src, dst } => {
                write!(f, "deletion of absent edge ({src}, {dst})")
            }
        }
    }
}

impl Error for ApplyError {}

/// The outcome of applying one batch: which updates took effect and which
/// vertices the incremental computation must treat as affected.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AppliedBatch {
    pub(crate) added: Vec<Edge>,
    pub(crate) deleted: Vec<Edge>,
    pub(crate) reweighted: Vec<(Edge, Weight)>,
    pub(crate) affected: Vec<VertexId>,
}

impl AppliedBatch {
    /// Edges inserted by the batch (edges that did not exist before).
    #[must_use]
    pub fn added_edges(&self) -> &[Edge] {
        &self.added
    }

    /// Additions that hit an existing edge and overwrote its weight:
    /// `(edge with new weight, old weight)`. Incremental engines treat these
    /// as a deletion of the old-weight edge plus an addition.
    #[must_use]
    pub fn reweighted_edges(&self) -> &[(Edge, Weight)] {
        &self.reweighted
    }

    /// Edges removed by the batch (with the weight they had).
    #[must_use]
    pub fn deleted_edges(&self) -> &[Edge] {
        &self.deleted
    }

    /// Vertices affected by the updates (destinations of added and deleted
    /// edges), deduplicated and sorted. These seed `Active_Vertices`.
    #[must_use]
    pub fn affected_vertices(&self) -> &[VertexId] {
        &self.affected
    }
}

/// A directed, weighted streaming graph.
///
/// Duplicate `(src, dst)` edges are collapsed: re-adding an existing edge
/// overwrites its weight (documented normalization policy; the engines treat
/// it as a weight change, i.e., a deletion followed by an addition).
#[derive(Debug, Clone, Default)]
pub struct StreamingGraph {
    adjacency: Vec<Vec<(VertexId, Weight)>>,
    edge_count: EdgeCount,
}

impl StreamingGraph {
    /// Creates an empty graph with `vertex_count` vertices.
    #[must_use]
    pub fn with_capacity(vertex_count: VertexCount) -> Self {
        Self { adjacency: vec![Vec::new(); vertex_count], edge_count: 0 }
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> VertexCount {
        self.adjacency.len()
    }

    /// Number of directed edges currently present.
    #[must_use]
    pub fn edge_count(&self) -> EdgeCount {
        self.edge_count
    }

    /// Whether edge `(src, dst)` is present.
    #[must_use]
    pub fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.adjacency.get(src as usize).is_some_and(|row| row.iter().any(|&(n, _)| n == dst))
    }

    /// The weight of edge `(src, dst)`, when present.
    #[must_use]
    pub fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        self.adjacency.get(src as usize)?.iter().find_map(|&(n, w)| (n == dst).then_some(w))
    }

    /// Out-degree of `v` (0 for out-of-range ids).
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency.get(v as usize).map_or(0, Vec::len)
    }

    /// The out-edges of `v` in insertion (push / swap-remove) order.
    #[must_use]
    pub fn out_edges(&self, v: VertexId) -> &[(VertexId, Weight)] {
        self.adjacency.get(v as usize).map_or(&[], Vec::as_slice)
    }

    /// Grows the vertex set so `vertex` is addressable.
    pub fn ensure_vertex(&mut self, vertex: VertexId) {
        if (vertex as usize) >= self.adjacency.len() {
            self.adjacency.resize(vertex as usize + 1, Vec::new());
        }
    }

    /// Inserts edges in bulk (initial 50 % load of §4.1). Re-inserted edges
    /// overwrite their weight. Self-loops are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError::VertexOutOfBounds`] for endpoints outside the
    /// current vertex range (use [`StreamingGraph::ensure_vertex`] first when
    /// loading into a pre-sized graph).
    pub fn insert_edges<I: IntoIterator<Item = Edge>>(
        &mut self,
        edges: I,
    ) -> Result<(), ApplyError> {
        for e in edges {
            self.check_bounds(e.src)?;
            self.check_bounds(e.dst)?;
            if e.is_self_loop() {
                continue;
            }
            self.insert_edge_unchecked(e);
        }
        Ok(())
    }

    fn check_bounds(&self, v: VertexId) -> Result<(), ApplyError> {
        if (v as usize) < self.adjacency.len() {
            Ok(())
        } else {
            Err(ApplyError::VertexOutOfBounds { vertex: v, vertex_count: self.adjacency.len() })
        }
    }

    /// Inserts or overwrites; returns the previous weight if the edge
    /// already existed.
    fn insert_edge_unchecked(&mut self, e: Edge) -> Option<Weight> {
        let row = &mut self.adjacency[e.src as usize];
        if let Some(slot) = row.iter_mut().find(|(n, _)| *n == e.dst) {
            let old = slot.1;
            slot.1 = e.weight;
            Some(old)
        } else {
            row.push((e.dst, e.weight));
            self.edge_count += 1;
            None
        }
    }

    fn remove_edge_unchecked(&mut self, src: VertexId, dst: VertexId) -> Option<Weight> {
        let row = &mut self.adjacency[src as usize];
        let at = row.iter().position(|&(n, _)| n == dst)?;
        let (_, w) = row.swap_remove(at);
        self.edge_count -= 1;
        Some(w)
    }

    /// Applies a validated batch atomically.
    ///
    /// Additions of already-present edges update the weight; deletions of
    /// absent edges fail. On error the graph is left unchanged.
    ///
    /// # Errors
    ///
    /// [`ApplyError::VertexOutOfBounds`] or [`ApplyError::MissingEdge`].
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<AppliedBatch, ApplyError> {
        // Validate first so failure cannot leave a half-applied batch.
        for u in batch.updates() {
            self.check_bounds(u.src)?;
            self.check_bounds(u.dst)?;
            if u.kind == UpdateKind::Deletion && !self.contains_edge(u.src, u.dst) {
                return Err(ApplyError::MissingEdge { src: u.src, dst: u.dst });
            }
        }
        let mut applied = AppliedBatch::default();
        for u in batch.updates() {
            match u.kind {
                UpdateKind::Addition => {
                    match self.insert_edge_unchecked(u.edge()) {
                        None => applied.added.push(u.edge()),
                        Some(old) => applied.reweighted.push((u.edge(), old)),
                    }
                    applied.affected.push(u.dst);
                }
                UpdateKind::Deletion => {
                    // Presence was validated above; `None` here would mean
                    // the batch self-conflicted, which `UpdateBatch`
                    // construction already rules out.
                    let w = self.remove_edge_unchecked(u.src, u.dst);
                    debug_assert!(w.is_some(), "deletion validated as present above");
                    if let Some(w) = w {
                        applied.deleted.push(Edge::new(u.src, u.dst, w));
                        applied.affected.push(u.dst);
                    }
                }
            }
        }
        applied.affected.sort_unstable();
        applied.affected.dedup();
        Ok(applied)
    }

    /// Applies a batch leniently: updates that strict
    /// [`StreamingGraph::apply_batch`] would reject are skipped and
    /// accounted in `quarantine` instead of failing the batch.
    ///
    /// Skipped records: updates with an endpoint outside the vertex range
    /// ([`QuarantineReason::VertexOutOfBounds`]) and deletions of absent
    /// edges ([`QuarantineReason::AbsentDeletion`]). Skipped updates do not
    /// mark any vertex affected. When nothing is quarantined the result is
    /// identical to strict application.
    pub fn apply_batch_lenient(
        &mut self,
        batch: &UpdateBatch,
        quarantine: &mut QuarantineReport,
    ) -> AppliedBatch {
        let mut applied = AppliedBatch::default();
        for u in batch.updates() {
            if self.check_bounds(u.src).is_err() || self.check_bounds(u.dst).is_err() {
                quarantine.record(
                    QuarantineReason::VertexOutOfBounds,
                    None,
                    &format!("({}, {})", u.src, u.dst),
                );
                continue;
            }
            match u.kind {
                UpdateKind::Addition => {
                    match self.insert_edge_unchecked(u.edge()) {
                        None => applied.added.push(u.edge()),
                        Some(old) => applied.reweighted.push((u.edge(), old)),
                    }
                    applied.affected.push(u.dst);
                }
                UpdateKind::Deletion => match self.remove_edge_unchecked(u.src, u.dst) {
                    Some(w) => {
                        applied.deleted.push(Edge::new(u.src, u.dst, w));
                        applied.affected.push(u.dst);
                    }
                    None => {
                        quarantine.record(
                            QuarantineReason::AbsentDeletion,
                            None,
                            &format!("({}, {})", u.src, u.dst),
                        );
                    }
                },
            }
        }
        applied.affected.sort_unstable();
        applied.affected.dedup();
        applied
    }

    /// Materializes an immutable CSR snapshot of the current graph.
    #[must_use]
    pub fn snapshot(&self) -> Csr {
        let edges: Vec<Edge> = self.iter_edges().collect();
        Csr::from_edges(self.vertex_count(), &edges)
    }

    /// Iterates all currently present edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(v, row)| row.iter().map(move |&(n, w)| Edge::new(v as VertexId, n, w)))
    }

    /// All present edges as a vector (deletion sampling pool for
    /// [`crate::update::BatchComposer`]).
    #[must_use]
    pub fn edges_vec(&self) -> Vec<Edge> {
        self.iter_edges().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::EdgeUpdate;

    fn base() -> StreamingGraph {
        let mut g = StreamingGraph::with_capacity(6);
        g.insert_edges([Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(2, 3, 1.0)]).unwrap();
        g
    }

    #[test]
    fn insert_counts_edges_and_skips_self_loops() {
        let mut g = StreamingGraph::with_capacity(3);
        g.insert_edges([Edge::new(0, 1, 1.0), Edge::new(1, 1, 9.0)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(!g.contains_edge(1, 1));
    }

    #[test]
    fn reinsert_overwrites_weight() {
        let mut g = StreamingGraph::with_capacity(3);
        g.insert_edges([Edge::new(0, 1, 1.0), Edge::new(0, 1, 5.0)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        let snap = g.snapshot();
        assert_eq!(snap.weights(0), &[5.0]);
    }

    #[test]
    fn apply_batch_adds_and_deletes() {
        let mut g = base();
        let batch = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(3, 4, 2.0),
            EdgeUpdate::deletion(0, 1),
        ])
        .unwrap();
        let applied = g.apply_batch(&batch).unwrap();
        assert!(g.contains_edge(3, 4));
        assert!(!g.contains_edge(0, 1));
        assert_eq!(applied.affected_vertices(), &[1, 4]);
        assert_eq!(applied.deleted_edges(), &[Edge::new(0, 1, 1.0)]);
    }

    #[test]
    fn apply_batch_missing_deletion_is_atomic() {
        let mut g = base();
        let before = g.edges_vec();
        let batch = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(4, 5, 1.0),
            EdgeUpdate::deletion(5, 0),
        ])
        .unwrap();
        let err = g.apply_batch(&batch).unwrap_err();
        assert_eq!(err, ApplyError::MissingEdge { src: 5, dst: 0 });
        assert_eq!(g.edges_vec(), before, "failed batch must not mutate the graph");
    }

    #[test]
    fn apply_batch_out_of_bounds() {
        let mut g = base();
        let batch = UpdateBatch::from_updates(vec![EdgeUpdate::addition(0, 99, 1.0)]).unwrap();
        assert!(matches!(
            g.apply_batch(&batch),
            Err(ApplyError::VertexOutOfBounds { vertex: 99, .. })
        ));
    }

    #[test]
    fn apply_batch_records_reweights_separately() {
        let mut g = base();
        let batch = UpdateBatch::from_updates(vec![EdgeUpdate::addition(0, 1, 9.0)]).unwrap();
        let applied = g.apply_batch(&batch).unwrap();
        assert!(applied.added_edges().is_empty());
        assert_eq!(applied.reweighted_edges(), &[(Edge::new(0, 1, 9.0), 1.0)]);
        assert_eq!(applied.affected_vertices(), &[1]);
        assert_eq!(g.snapshot().weights(0), &[9.0]);
    }

    #[test]
    fn snapshot_matches_adjacency() {
        let g = base();
        let s = g.snapshot();
        assert_eq!(s.vertex_count(), 6);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.neighbors(1), &[2]);
    }

    #[test]
    fn ensure_vertex_grows() {
        let mut g = StreamingGraph::with_capacity(1);
        g.ensure_vertex(10);
        assert_eq!(g.vertex_count(), 11);
        g.insert_edges([Edge::new(10, 0, 1.0)]).unwrap();
        assert!(g.contains_edge(10, 0));
    }

    #[test]
    fn error_display_messages() {
        let a = ApplyError::MissingEdge { src: 1, dst: 2 };
        assert_eq!(a.to_string(), "deletion of absent edge (1, 2)");
        let b = ApplyError::VertexOutOfBounds { vertex: 9, vertex_count: 3 };
        assert!(b.to_string().contains("out of bounds"));
    }

    #[test]
    fn lenient_apply_quarantines_what_strict_rejects() {
        let batch = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(3, 4, 2.0),
            EdgeUpdate::deletion(5, 0),       // absent
            EdgeUpdate::addition(0, 99, 1.0), // out of bounds
            EdgeUpdate::deletion(1, 2),       // fine
        ])
        .unwrap();

        let mut strict = base();
        assert!(strict.apply_batch(&batch).is_err());

        let mut lenient = base();
        let mut q = QuarantineReport::new();
        let applied = lenient.apply_batch_lenient(&batch, &mut q);
        assert_eq!(q.total(), 2);
        assert_eq!(q.count(QuarantineReason::AbsentDeletion), 1);
        assert_eq!(q.count(QuarantineReason::VertexOutOfBounds), 1);
        assert!(lenient.contains_edge(3, 4));
        assert!(!lenient.contains_edge(1, 2));
        assert_eq!(applied.affected_vertices(), &[2, 4], "skipped updates mark nothing affected");
    }

    #[test]
    fn lenient_apply_of_clean_batch_matches_strict() {
        let batch = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(3, 4, 2.0),
            EdgeUpdate::addition(0, 1, 7.0), // reweight
            EdgeUpdate::deletion(1, 2),
        ])
        .unwrap();
        let mut strict = base();
        let want = strict.apply_batch(&batch).unwrap();
        let mut lenient = base();
        let mut q = QuarantineReport::new();
        let got = lenient.apply_batch_lenient(&batch, &mut q);
        assert!(q.is_empty());
        assert_eq!(got, want);
        assert_eq!(lenient.edges_vec(), strict.edges_vec());
    }
}
