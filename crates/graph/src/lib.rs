//! Streaming-graph substrate for the TDGraph reproduction.
//!
//! This crate provides everything the paper's evaluation needs below the
//! algorithm layer:
//!
//! * [`csr::Csr`] — Compressed Sparse Row snapshots (the paper's
//!   `Offset_Array` / `Neighbor_Array` representation, §3.3.1),
//! * [`streaming::StreamingGraph`] — a mutable adjacency store that applies
//!   [`update::UpdateBatch`]es and materializes CSR snapshots,
//! * [`store`] — the pluggable [`store::GraphStore`] trait,
//!   [`store::StorageKind`] selector, and [`store::AnyStore`] enum dispatch,
//! * [`hybrid`] — the GraphTango-style degree-adaptive
//!   [`hybrid::HybridStore`] (inline / linear / hash-indexed tiers),
//! * [`generate`] — seeded (clustered) R-MAT and uniform generators,
//! * [`io`] — SNAP-format edge-list loading/saving for real datasets,
//! * [`datasets`] — synthetic stand-ins for the six SNAP datasets of Table 2,
//! * [`partition`] — vertex-range chunking for the 64 simulated cores,
//! * [`stats`] — degree-distribution and skew measures,
//! * [`prng`] — deterministic SplitMix64 / Xoshiro256** generators,
//! * [`fault`] — seeded [`fault::FaultPlan`] input corruption for chaos
//!   testing,
//! * [`quarantine`] — lenient-ingest accounting
//!   ([`quarantine::QuarantineReport`]),
//! * [`wire`] — JSON-line framing for streamed edge updates and the
//!   record/replay schedule format ([`wire::RecordedSchedule`]).
//!
//! # Example
//!
//! ```
//! use tdgraph_graph::generate::{Rmat, RmatConfig};
//! use tdgraph_graph::streaming::StreamingGraph;
//! use tdgraph_graph::update::{EdgeUpdate, UpdateBatch};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let edges = Rmat::new(RmatConfig::new(8, 4).with_seed(7)).edges();
//! let mut graph = StreamingGraph::with_capacity(256);
//! graph.insert_edges(edges.iter().copied())?;
//! let snapshot = graph.snapshot();
//! assert_eq!(snapshot.vertex_count(), 256);
//!
//! let batch = UpdateBatch::from_updates(vec![EdgeUpdate::addition(0, 5, 1.0)])?;
//! let applied = graph.apply_batch(&batch)?;
//! assert!(applied.affected_vertices().contains(&5));
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod csr;
pub mod datasets;
pub mod error;
pub mod fault;
pub mod generate;
pub mod hybrid;
pub mod io;
pub mod partition;
pub mod prng;
pub mod quarantine;
pub mod stats;
pub mod store;
pub mod streaming;
pub mod types;
pub mod update;
pub mod wire;

pub use csr::Csr;
pub use fault::FaultPlan;
pub use hybrid::HybridStore;
pub use quarantine::{IngestMode, QuarantineReason, QuarantineReport};
pub use store::{AnyStore, GraphStore, StorageKind, StorageRegion, StorageStats, StorageTouch};
pub use streaming::StreamingGraph;
pub use types::{EdgeCount, VertexCount, VertexId, Weight};
pub use update::{EdgeUpdate, UpdateBatch};
