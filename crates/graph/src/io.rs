//! Edge-list file I/O (SNAP format).
//!
//! The paper's datasets come from the SNAP repository as whitespace-
//! separated edge lists with `#` comment lines. This module reads and
//! writes that format so users who have the real files can run the
//! reproduction on them instead of the synthetic stand-ins:
//!
//! ```no_run
//! use tdgraph_graph::io::load_edge_list;
//! use tdgraph_graph::datasets::StreamingWorkload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let loaded = load_edge_list("soc-LiveJournal1.txt")?;
//! let workload = StreamingWorkload::from_edges(
//!     loaded.edges, loaded.vertex_count, /* seed */ 42,
//! );
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::prng::Xoshiro256StarStar;
use crate::types::{Edge, VertexCount, VertexId};

/// An edge list loaded from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedGraph {
    /// The edges, in file order (self-loops dropped).
    pub edges: Vec<Edge>,
    /// One past the largest vertex id seen.
    pub vertex_count: VertexCount,
    /// How many lines were skipped as comments or blanks.
    pub skipped_lines: usize,
}

/// Error loading an edge list.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A vertex id parsed but does not fit in [`VertexId`]; truncating it
    /// would silently alias two distinct vertices.
    TooManyVertices {
        /// 1-based line number.
        line: usize,
        /// The out-of-range id as parsed.
        id: u64,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "unparsable edge at line {line}: {content:?}")
            }
            LoadError::TooManyVertices { line, id } => write!(
                f,
                "vertex id {id} at line {line} exceeds the {}-bit VertexId range",
                VertexId::BITS
            ),
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } | LoadError::TooManyVertices { .. } => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Loads a SNAP-style edge list: one `src dst [weight]` triple per line,
/// whitespace-separated, `#`-prefixed comment lines ignored. Unweighted
/// edges receive deterministic small-integer weights in `{1, …, 64}`
/// (seeded by the endpoints), matching the convention the streaming-graph
/// evaluations use for unweighted SNAP graphs.
///
/// # Errors
///
/// [`LoadError::Io`] on file errors, [`LoadError::Parse`] on malformed
/// lines.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, LoadError> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(BufReader::new(file))
}

/// Parses an edge list from any reader (see [`load_edge_list`]).
///
/// # Errors
///
/// Same as [`load_edge_list`].
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<LoadedGraph, LoadError> {
    let mut edges = Vec::new();
    let mut max_vertex: u64 = 0;
    let mut skipped = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            skipped += 1;
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(LoadError::Parse { line: idx + 1, content: line.clone() });
        };
        // Parse at full u64 width first so an id past the VertexId range is
        // reported as an overflow, not truncated or misread as garbage.
        let (Ok(src64), Ok(dst64)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(LoadError::Parse { line: idx + 1, content: line.clone() });
        };
        let src = VertexId::try_from(src64)
            .map_err(|_| LoadError::TooManyVertices { line: idx + 1, id: src64 })?;
        let dst = VertexId::try_from(dst64)
            .map_err(|_| LoadError::TooManyVertices { line: idx + 1, id: dst64 })?;
        let weight = match parts.next() {
            Some(w) => w
                .parse::<f32>()
                .map_err(|_| LoadError::Parse { line: idx + 1, content: line.clone() })?,
            None => synthetic_weight(src, dst),
        };
        max_vertex = max_vertex.max(u64::from(src)).max(u64::from(dst));
        if src != dst {
            edges.push(Edge::new(src, dst, weight));
        }
    }
    let vertex_count =
        if edges.is_empty() && max_vertex == 0 { 0 } else { max_vertex as usize + 1 };
    Ok(LoadedGraph { edges, vertex_count, skipped_lines: skipped })
}

/// Deterministic small-integer weight for an unweighted edge.
fn synthetic_weight(src: VertexId, dst: VertexId) -> f32 {
    let mut rng = Xoshiro256StarStar::new((u64::from(src) << 32) ^ u64::from(dst) ^ 0x7D6);
    (rng.next_below(64) + 1) as f32
}

/// Writes an edge list in SNAP format (`src dst weight` per line).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_edge_list<P: AsRef<Path>>(path: P, edges: &[Edge]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# tdgraph-rs edge list: src dst weight")?;
    for e in edges {
        writeln!(w, "{}\t{}\t{}", e.src, e.dst, e.weight)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_snap_format_with_comments() {
        let text = "# Directed graph\n# Nodes: 4 Edges: 3\n0\t1\n1 2\n\n2\t3\n";
        let g = parse_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.edges.len(), 3);
        assert_eq!(g.vertex_count, 4);
        assert_eq!(g.skipped_lines, 3);
        assert_eq!((g.edges[0].src, g.edges[0].dst), (0, 1));
        assert!(g.edges.iter().all(|e| (1.0..=64.0).contains(&e.weight)));
    }

    #[test]
    fn parses_explicit_weights() {
        let g = parse_edge_list(Cursor::new("0 1 2.5\n1 0 3\n")).unwrap();
        assert_eq!(g.edges[0].weight, 2.5);
        assert_eq!(g.edges[1].weight, 3.0);
    }

    #[test]
    fn synthetic_weights_are_deterministic() {
        let a = parse_edge_list(Cursor::new("3 9\n")).unwrap();
        let b = parse_edge_list(Cursor::new("3 9\n")).unwrap();
        assert_eq!(a.edges[0].weight, b.edges[0].weight);
    }

    #[test]
    fn drops_self_loops_but_counts_vertices() {
        let g = parse_edge_list(Cursor::new("5 5\n0 1\n")).unwrap();
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.vertex_count, 6);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = parse_edge_list(Cursor::new("0 1\nnot an edge\n")).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn missing_endpoint_is_an_error() {
        assert!(parse_edge_list(Cursor::new("42\n")).is_err());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse_edge_list(Cursor::new("")).unwrap();
        assert_eq!(g.vertex_count, 0);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("tdgraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        let edges = vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 3.5), Edge::new(2, 0, 1.0)];
        save_edge_list(&path, &edges).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.edges, edges);
        assert_eq!(loaded.vertex_count, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vertex_id_overflow_is_reported_not_truncated() {
        // 2^33 parses as u64 but cannot be a 32-bit VertexId; a silent
        // `as u32` cast would alias it onto vertex 0.
        let err = parse_edge_list(Cursor::new("0 1\n8589934592 2\n")).unwrap_err();
        match err {
            LoadError::TooManyVertices { line, id } => {
                assert_eq!(line, 2);
                assert_eq!(id, 1 << 33);
            }
            other => panic!("expected TooManyVertices, got {other}"),
        }
        assert!(err.to_string().contains("8589934592"));
    }

    #[test]
    fn max_vertex_id_still_loads() {
        let max = u32::MAX;
        let g = parse_edge_list(Cursor::new(format!("0 {max}\n"))).unwrap();
        assert_eq!(g.edges[0].dst, max);
        assert_eq!(g.vertex_count, max as usize + 1);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_edge_list("/nonexistent/tdgraph/file.txt").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }
}
