//! Edge-list file I/O (SNAP format).
//!
//! The paper's datasets come from the SNAP repository as whitespace-
//! separated edge lists with `#` comment lines. This module reads and
//! writes that format so users who have the real files can run the
//! reproduction on them instead of the synthetic stand-ins:
//!
//! ```no_run
//! use tdgraph_graph::io::LoadConfig;
//! use tdgraph_graph::datasets::StreamingWorkload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let loaded = LoadConfig::new().load("soc-LiveJournal1.txt")?;
//! let workload = StreamingWorkload::from_edges(
//!     loaded.graph.edges, loaded.graph.vertex_count, /* seed */ 42,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! The one entry point is the [`LoadConfig`] builder: pick the ingest
//! discipline with [`LoadConfig::ingest`] (strict rejects the whole file
//! on the first bad record with the 1-based line number and a truncated
//! copy of the offending line; lenient skips each bad record into a
//! bounded [`QuarantineReport`] and keeps going — a mid-stream read error
//! keeps the parsed prefix instead of losing it), arm seeded input
//! corruption with [`LoadConfig::fault_plan`], and choose the backing
//! [`StorageKind`] with [`LoadConfig::storage`]. The result is a
//! [`LoadOutcome`] carrying the parsed edges, the quarantine accounting,
//! and a ready-to-mutate [`AnyStore`]. The pre-builder entry points
//! ([`load_edge_list`] and friends) survive as deprecated shims.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::fault::FaultPlan;
use crate::prng::Xoshiro256StarStar;
use crate::quarantine::{truncate_detail, IngestMode, QuarantineReason, QuarantineReport};
use crate::store::{AnyStore, GraphStore, StorageKind};
use crate::types::{Edge, VertexCount, VertexId};

/// An edge list loaded from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedGraph {
    /// The edges, in file order (self-loops dropped).
    pub edges: Vec<Edge>,
    /// One past the largest vertex id seen.
    pub vertex_count: VertexCount,
    /// How many lines were skipped as comments or blanks.
    pub skipped_lines: usize,
}

/// Error loading an edge list. Every variant that refers to file content
/// carries the 1-based line number and a truncated copy of the offending
/// line, so the error alone locates the bad record.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content (truncated to a bounded length).
        content: String,
    },
    /// A vertex id parsed but does not fit in [`VertexId`]; truncating it
    /// would silently alias two distinct vertices.
    TooManyVertices {
        /// 1-based line number.
        line: usize,
        /// The out-of-range id as parsed.
        id: u64,
        /// The offending content (truncated to a bounded length).
        content: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "unparsable edge at line {line}: {content:?}")
            }
            LoadError::TooManyVertices { line, id, content } => write!(
                f,
                "vertex id {id} at line {line} exceeds the {}-bit VertexId range: {content:?}",
                VertexId::BITS
            ),
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } | LoadError::TooManyVertices { .. } => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Why one data line failed to parse (shared by the strict and lenient
/// paths so the two modes reject / quarantine *exactly* the same records).
enum LineFault {
    /// Tokens missing or unparsable, or a non-finite weight.
    Malformed,
    /// An endpoint id exceeds the [`VertexId`] range.
    Overflow(u64),
}

impl LineFault {
    fn reason(&self) -> QuarantineReason {
        match self {
            LineFault::Malformed => QuarantineReason::MalformedLine,
            LineFault::Overflow(_) => QuarantineReason::IdOverflow,
        }
    }

    fn into_error(self, line: usize, content: &str) -> LoadError {
        let content = truncate_detail(content);
        match self {
            LineFault::Malformed => LoadError::Parse { line, content },
            LineFault::Overflow(id) => LoadError::TooManyVertices { line, id, content },
        }
    }
}

/// Parses one trimmed, non-comment data line into `(src, dst, weight)`.
/// `None` weight means unweighted (synthesize one). Non-finite explicit
/// weights are malformed: NaN propagates through every algorithm state,
/// so letting one in would poison a whole run silently.
fn parse_data_line(trimmed: &str) -> Result<(VertexId, VertexId, Option<f32>), LineFault> {
    let mut parts = trimmed.split_whitespace();
    let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
        return Err(LineFault::Malformed);
    };
    // Parse at full u64 width first so an id past the VertexId range is
    // reported as an overflow, not truncated or misread as garbage.
    let (Ok(src64), Ok(dst64)) = (a.parse::<u64>(), b.parse::<u64>()) else {
        return Err(LineFault::Malformed);
    };
    let src = VertexId::try_from(src64).map_err(|_| LineFault::Overflow(src64))?;
    let dst = VertexId::try_from(dst64).map_err(|_| LineFault::Overflow(dst64))?;
    let weight = match parts.next() {
        Some(w) => {
            let w = w.parse::<f32>().map_err(|_| LineFault::Malformed)?;
            if !w.is_finite() {
                return Err(LineFault::Malformed);
            }
            Some(w)
        }
        None => None,
    };
    Ok((src, dst, weight))
}

/// Builder configuring how an edge list is loaded: ingest discipline,
/// seeded input corruption, and which [`StorageKind`] backs the resulting
/// mutable store.
///
/// ```
/// use tdgraph_graph::io::LoadConfig;
/// use tdgraph_graph::quarantine::IngestMode;
/// use tdgraph_graph::store::{GraphStore, StorageKind};
///
/// let outcome = LoadConfig::new()
///     .ingest(IngestMode::Lenient)
///     .storage(StorageKind::Hybrid)
///     .parse(std::io::Cursor::new("0 1 2.0\nbroken\n1 2 1.5\n"))
///     .unwrap();
/// assert_eq!(outcome.graph.edges.len(), 2);
/// assert_eq!(outcome.quarantine.total(), 1);
/// assert_eq!(outcome.store.num_edges(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoadConfig {
    ingest: IngestMode,
    fault_plan: FaultPlan,
    storage: StorageKind,
}

/// What a [`LoadConfig`] load produced: the parsed edge list, the
/// quarantine accounting (always empty under strict ingest), and a
/// mutable store of the requested [`StorageKind`] pre-populated with the
/// loaded edges.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The parsed edges, vertex count, and comment/blank accounting.
    pub graph: LoadedGraph,
    /// Records skipped by lenient ingest (empty under strict ingest).
    pub quarantine: QuarantineReport,
    /// The loaded graph as a mutable store, ready for update batches.
    pub store: AnyStore,
}

impl LoadConfig {
    /// Strict ingest, no fault injection, CSR-backed storage.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the ingest discipline (default [`IngestMode::Strict`]).
    #[must_use]
    pub fn ingest(mut self, mode: IngestMode) -> Self {
        self.ingest = mode;
        self
    }

    /// Arms seeded input corruption: the raw text is passed through
    /// `plan` before parsing (chaos testing; default
    /// [`FaultPlan::none`]).
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Selects the storage backend of [`LoadOutcome::store`] (default
    /// [`StorageKind::Csr`]).
    #[must_use]
    pub fn storage(mut self, kind: StorageKind) -> Self {
        self.storage = kind;
        self
    }

    /// Loads a SNAP-style edge list from `path` (see [`LoadConfig::parse`]
    /// for the format and discipline semantics).
    ///
    /// # Errors
    ///
    /// [`LoadError::Io`] on file errors; under strict ingest also
    /// [`LoadError::Parse`] / [`LoadError::TooManyVertices`] on the first
    /// bad record.
    pub fn load<P: AsRef<Path>>(&self, path: P) -> Result<LoadOutcome, LoadError> {
        if self.fault_plan.is_noop() {
            let file = std::fs::File::open(path)?;
            self.parse_clean(BufReader::new(file))
        } else {
            let text = std::fs::read_to_string(path)?;
            self.parse_clean(self.fault_plan.corrupted_reader(&text))
        }
    }

    /// Parses a SNAP-style edge list from any reader: one
    /// `src dst [weight]` triple per line, whitespace-separated, `#`- and
    /// `%`-prefixed comment lines ignored. Unweighted edges receive
    /// deterministic small-integer weights in `{1, …, 64}` (seeded by the
    /// endpoints). Under [`IngestMode::Strict`] the first bad record
    /// fails the load; under [`IngestMode::Lenient`] bad records are
    /// skipped into [`LoadOutcome::quarantine`] and a mid-stream read
    /// error keeps the parsed prefix.
    ///
    /// # Errors
    ///
    /// Strict ingest: [`LoadError::Io`], [`LoadError::Parse`], or
    /// [`LoadError::TooManyVertices`]. Lenient ingest never fails here —
    /// everything strict would reject is quarantined instead.
    pub fn parse<R: BufRead>(&self, reader: R) -> Result<LoadOutcome, LoadError> {
        if self.fault_plan.is_noop() {
            self.parse_clean(reader)
        } else {
            let mut text = String::new();
            let mut reader = reader;
            reader.read_to_string(&mut text)?;
            self.parse_clean(self.fault_plan.corrupted_reader(&text))
        }
    }

    /// Parses from a reader that already has any fault plan applied.
    fn parse_clean<R: BufRead>(&self, reader: R) -> Result<LoadOutcome, LoadError> {
        let (graph, quarantine) = match self.ingest {
            IngestMode::Strict => (parse_edge_list(reader)?, QuarantineReport::new()),
            IngestMode::Lenient => parse_lenient(reader),
        };
        let mut store = AnyStore::with_capacity(self.storage, graph.vertex_count);
        // Every endpoint is < vertex_count by construction, so population
        // cannot fail.
        if let Err(e) = store.insert_edges(&graph.edges) {
            debug_assert!(false, "loader produced out-of-bounds edge: {e}");
        }
        Ok(LoadOutcome { graph, quarantine, store })
    }
}

/// Loads a SNAP-style edge list: one `src dst [weight]` triple per line,
/// whitespace-separated, `#`-prefixed comment lines ignored. Unweighted
/// edges receive deterministic small-integer weights in `{1, …, 64}`
/// (seeded by the endpoints), matching the convention the streaming-graph
/// evaluations use for unweighted SNAP graphs.
///
/// # Errors
///
/// [`LoadError::Io`] on file errors, [`LoadError::Parse`] on malformed
/// lines (including non-finite explicit weights),
/// [`LoadError::TooManyVertices`] on an id past the [`VertexId`] range.
#[deprecated(since = "0.1.0", note = "use `LoadConfig::new().load(path)` instead")]
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, LoadError> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(BufReader::new(file))
}

/// Lenient variant of `load_edge_list`: bad records are skipped into the
/// returned [`QuarantineReport`] instead of aborting the load.
///
/// # Errors
///
/// [`LoadError::Io`] only when the file cannot be opened; a read error
/// mid-stream is quarantined ([`QuarantineReason::IoInterrupted`]) and the
/// parsed prefix is returned.
#[deprecated(
    since = "0.1.0",
    note = "use `LoadConfig::new().ingest(IngestMode::Lenient).load(path)` instead"
)]
pub fn load_edge_list_lenient<P: AsRef<Path>>(
    path: P,
) -> Result<(LoadedGraph, QuarantineReport), LoadError> {
    let file = std::fs::File::open(path)?;
    Ok(parse_lenient(BufReader::new(file)))
}

/// Parses an edge list from any reader (see [`load_edge_list`]).
///
/// # Errors
///
/// Same as [`load_edge_list`].
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<LoadedGraph, LoadError> {
    let mut edges = Vec::new();
    let mut max_vertex: u64 = 0;
    let mut skipped = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            skipped += 1;
            continue;
        }
        let (src, dst, weight) =
            parse_data_line(trimmed).map_err(|fault| fault.into_error(idx + 1, &line))?;
        let weight = weight.unwrap_or_else(|| synthetic_weight(src, dst));
        max_vertex = max_vertex.max(u64::from(src)).max(u64::from(dst));
        if src != dst {
            edges.push(Edge::new(src, dst, weight));
        }
    }
    let vertex_count =
        if edges.is_empty() && max_vertex == 0 { 0 } else { max_vertex as usize + 1 };
    Ok(LoadedGraph { edges, vertex_count, skipped_lines: skipped })
}

/// Lenient variant of [`parse_edge_list`]: every record strict mode would
/// reject is skipped and recorded in the [`QuarantineReport`] (same line
/// number, truncated content), and parsing continues. A mid-stream read
/// error ends the parse but keeps the prefix, quarantined as
/// [`QuarantineReason::IoInterrupted`]. Infallible by design — the only
/// unrecoverable failure (opening the file) happens before parsing.
#[deprecated(
    since = "0.1.0",
    note = "use `LoadConfig::new().ingest(IngestMode::Lenient).parse(reader)` instead"
)]
#[must_use]
pub fn parse_edge_list_lenient<R: BufRead>(reader: R) -> (LoadedGraph, QuarantineReport) {
    parse_lenient(reader)
}

/// Shared lenient parser (see the deprecated `parse_edge_list_lenient`
/// shim for the contract).
fn parse_lenient<R: BufRead>(reader: R) -> (LoadedGraph, QuarantineReport) {
    let mut report = QuarantineReport::new();
    let mut edges = Vec::new();
    let mut max_vertex: u64 = 0;
    let mut skipped = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                report.record(QuarantineReason::IoInterrupted, Some(idx + 1), &e.to_string());
                break;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            skipped += 1;
            continue;
        }
        match parse_data_line(trimmed) {
            Ok((src, dst, weight)) => {
                let weight = weight.unwrap_or_else(|| synthetic_weight(src, dst));
                max_vertex = max_vertex.max(u64::from(src)).max(u64::from(dst));
                if src != dst {
                    edges.push(Edge::new(src, dst, weight));
                }
            }
            Err(fault) => report.record(fault.reason(), Some(idx + 1), &line),
        }
    }
    let vertex_count =
        if edges.is_empty() && max_vertex == 0 { 0 } else { max_vertex as usize + 1 };
    (LoadedGraph { edges, vertex_count, skipped_lines: skipped }, report)
}

/// Deterministic small-integer weight for an unweighted edge.
fn synthetic_weight(src: VertexId, dst: VertexId) -> f32 {
    let mut rng = Xoshiro256StarStar::new((u64::from(src) << 32) ^ u64::from(dst) ^ 0x7D6);
    (rng.next_below(64) + 1) as f32
}

/// Writes an edge list in SNAP format (`src dst weight` per line).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_edge_list<P: AsRef<Path>>(path: P, edges: &[Edge]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# tdgraph-rs edge list: src dst weight")?;
    for e in edges {
        writeln!(w, "{}\t{}\t{}", e.src, e.dst, e.weight)?;
    }
    w.flush()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::io::Cursor;

    #[test]
    fn load_config_strict_matches_legacy_loader() {
        let text = "# header\n0 1 2.0\n1 2\n\n2 0 1.5\n";
        let legacy = parse_edge_list(Cursor::new(text)).unwrap();
        let outcome = LoadConfig::new().parse(Cursor::new(text)).unwrap();
        assert_eq!(outcome.graph, legacy);
        assert!(outcome.quarantine.is_empty());
        assert_eq!(outcome.store.kind(), StorageKind::Csr);
        assert_eq!(outcome.store.num_edges(), legacy.edges.len());
        assert_eq!(outcome.store.edges_vec(), legacy.edges);
    }

    #[test]
    fn load_config_strict_rejects_what_legacy_rejects() {
        let text = "0 1\nbroken\n";
        assert!(matches!(
            LoadConfig::new().parse(Cursor::new(text)),
            Err(LoadError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn load_config_lenient_matches_legacy_lenient() {
        let text = "0 1\nbroken\n8589934592 2\n2 3 NaN\n3 4 2.5\n";
        let (legacy, legacy_q) = parse_edge_list_lenient(Cursor::new(text));
        let outcome =
            LoadConfig::new().ingest(IngestMode::Lenient).parse(Cursor::new(text)).unwrap();
        assert_eq!(outcome.graph, legacy);
        assert_eq!(outcome.quarantine.total(), legacy_q.total());
        assert_eq!(outcome.store.num_edges(), legacy.edges.len());
    }

    #[test]
    fn load_config_hybrid_storage_holds_the_same_edges() {
        let text = "0 1 2.0\n1 2 1.0\n2 0 3.0\n";
        let csr = LoadConfig::new().parse(Cursor::new(text)).unwrap();
        let hybrid =
            LoadConfig::new().storage(StorageKind::Hybrid).parse(Cursor::new(text)).unwrap();
        assert_eq!(hybrid.store.kind(), StorageKind::Hybrid);
        assert_eq!(hybrid.store.edges_vec(), csr.store.edges_vec());
        assert_eq!(hybrid.store.snapshot(), csr.store.snapshot());
    }

    #[test]
    fn load_config_fault_plan_corrupts_before_parsing() {
        let clean: String = (0..64).map(|i| format!("{i} {} 1.0\n", i + 1)).collect();
        let plan = FaultPlan::seeded(42)
            .with_malformed_lines(0.2)
            .with_truncated_lines(0.2)
            .with_out_of_range_ids(0.2);
        let outcome = LoadConfig::new()
            .ingest(IngestMode::Lenient)
            .fault_plan(plan)
            .parse(Cursor::new(clean.clone()))
            .unwrap();
        let (legacy, legacy_q) = parse_edge_list_lenient(plan.corrupted_reader(&clean));
        assert_eq!(outcome.graph, legacy);
        assert_eq!(outcome.quarantine.total(), legacy_q.total());
        assert!(!outcome.quarantine.is_empty(), "armed plan must corrupt something");
    }

    #[test]
    fn load_config_load_reads_files_with_and_without_faults() {
        let dir = std::env::temp_dir().join("tdgraph_io_loadconfig_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        let edges = vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 3.5)];
        save_edge_list(&path, &edges).unwrap();
        let outcome = LoadConfig::new().load(&path).unwrap();
        assert_eq!(outcome.graph.edges, edges);
        let faulted = LoadConfig::new()
            .ingest(IngestMode::Lenient)
            .fault_plan(FaultPlan::seeded(7).with_io_error_after(1))
            .load(&path)
            .unwrap();
        assert_eq!(faulted.quarantine.count(QuarantineReason::IoInterrupted), 1);
        std::fs::remove_file(&path).ok();
        assert!(matches!(LoadConfig::new().load(&path), Err(LoadError::Io(_))));
    }

    #[test]
    fn parses_snap_format_with_comments() {
        let text = "# Directed graph\n# Nodes: 4 Edges: 3\n0\t1\n1 2\n\n2\t3\n";
        let g = parse_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.edges.len(), 3);
        assert_eq!(g.vertex_count, 4);
        assert_eq!(g.skipped_lines, 3);
        assert_eq!((g.edges[0].src, g.edges[0].dst), (0, 1));
        assert!(g.edges.iter().all(|e| (1.0..=64.0).contains(&e.weight)));
    }

    #[test]
    fn parses_explicit_weights() {
        let g = parse_edge_list(Cursor::new("0 1 2.5\n1 0 3\n")).unwrap();
        assert_eq!(g.edges[0].weight, 2.5);
        assert_eq!(g.edges[1].weight, 3.0);
    }

    #[test]
    fn synthetic_weights_are_deterministic() {
        let a = parse_edge_list(Cursor::new("3 9\n")).unwrap();
        let b = parse_edge_list(Cursor::new("3 9\n")).unwrap();
        assert_eq!(a.edges[0].weight, b.edges[0].weight);
    }

    #[test]
    fn drops_self_loops_but_counts_vertices() {
        let g = parse_edge_list(Cursor::new("5 5\n0 1\n")).unwrap();
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.vertex_count, 6);
    }

    #[test]
    fn malformed_line_reports_position_and_content() {
        let err = parse_edge_list(Cursor::new("0 1\nnot an edge\n")).unwrap_err();
        match err {
            LoadError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "not an edge");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn missing_endpoint_reports_position_and_content() {
        let err = parse_edge_list(Cursor::new("42\n")).unwrap_err();
        match err {
            LoadError::Parse { line, content } => {
                assert_eq!(line, 1);
                assert_eq!(content, "42");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn unparsable_weight_reports_position_and_content() {
        let err = parse_edge_list(Cursor::new("0 1\n1 2 heavy\n")).unwrap_err();
        match err {
            LoadError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "1 2 heavy");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn non_finite_weight_is_a_parse_error() {
        for bad in ["0 1 NaN", "0 1 inf", "0 1 -inf"] {
            let err = parse_edge_list(Cursor::new(format!("{bad}\n"))).unwrap_err();
            match err {
                LoadError::Parse { line, content } => {
                    assert_eq!(line, 1, "{bad}");
                    assert_eq!(content, bad);
                }
                other => panic!("expected parse error for {bad:?}, got {other}"),
            }
        }
    }

    #[test]
    fn parse_error_content_is_truncated() {
        let long = format!("0 1 {}", "z".repeat(500));
        let err = parse_edge_list(Cursor::new(format!("{long}\n"))).unwrap_err();
        match err {
            LoadError::Parse { content, .. } => {
                assert!(content.chars().count() <= crate::quarantine::MAX_DETAIL_CHARS + 1);
                assert!(content.ends_with('…'));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse_edge_list(Cursor::new("")).unwrap();
        assert_eq!(g.vertex_count, 0);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("tdgraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        let edges = vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 3.5), Edge::new(2, 0, 1.0)];
        save_edge_list(&path, &edges).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded.edges, edges);
        assert_eq!(loaded.vertex_count, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vertex_id_overflow_reports_position_and_content() {
        // 2^33 parses as u64 but cannot be a 32-bit VertexId; a silent
        // `as u32` cast would alias it onto vertex 0.
        let err = parse_edge_list(Cursor::new("0 1\n8589934592 2\n")).unwrap_err();
        match &err {
            LoadError::TooManyVertices { line, id, content } => {
                assert_eq!(*line, 2);
                assert_eq!(*id, 1 << 33);
                assert_eq!(content, "8589934592 2");
            }
            other => panic!("expected TooManyVertices, got {other}"),
        }
        assert!(err.to_string().contains("8589934592"));
    }

    #[test]
    fn max_vertex_id_still_loads() {
        let max = u32::MAX;
        let g = parse_edge_list(Cursor::new(format!("0 {max}\n"))).unwrap();
        assert_eq!(g.edges[0].dst, max);
        assert_eq!(g.vertex_count, max as usize + 1);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_edge_list("/nonexistent/tdgraph/file.txt").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
        assert!(load_edge_list_lenient("/nonexistent/tdgraph/file.txt").is_err());
    }

    #[test]
    fn lenient_parse_quarantines_what_strict_rejects() {
        let text = "0 1\nbroken\n8589934592 2\n2 3 NaN\n3 4 2.5\n";
        assert!(parse_edge_list(Cursor::new(text)).is_err());
        let (g, q) = parse_edge_list_lenient(Cursor::new(text));
        assert_eq!(g.edges.len(), 2, "good records survive");
        assert_eq!(q.total(), 3);
        assert_eq!(q.count(QuarantineReason::MalformedLine), 2, "broken + NaN weight");
        assert_eq!(q.count(QuarantineReason::IdOverflow), 1);
        assert_eq!(q.exemplars()[0].line, Some(2));
        assert_eq!(q.exemplars()[0].detail, "broken");
    }

    #[test]
    fn lenient_parse_of_clean_input_matches_strict() {
        let text = "# header\n0 1 2.0\n1 2\n\n2 0 1.5\n";
        let strict = parse_edge_list(Cursor::new(text)).unwrap();
        let (lenient, q) = parse_edge_list_lenient(Cursor::new(text));
        assert!(q.is_empty());
        assert_eq!(lenient, strict);
    }

    #[test]
    fn lenient_parse_keeps_prefix_on_io_fault() {
        let plan = FaultPlan::seeded(0).with_io_error_after(2);
        let (g, q) = parse_edge_list_lenient(plan.corrupted_reader("0 1\n1 2\n2 3\n3 4\n"));
        assert_eq!(g.edges.len(), 2, "prefix before the fault survives");
        assert_eq!(q.count(QuarantineReason::IoInterrupted), 1);
        assert!(q.exemplars()[0].detail.contains("injected"));
        // Strict mode rejects the same stream outright.
        let err = parse_edge_list(plan.corrupted_reader("0 1\n1 2\n2 3\n3 4\n")).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }

    #[test]
    fn lenient_parse_of_faulted_text_quarantines_every_armed_fault() {
        let clean: String = (0..64).map(|i| format!("{i} {} 1.0\n", i + 1)).collect();
        let plan = FaultPlan::seeded(42)
            .with_malformed_lines(0.2)
            .with_truncated_lines(0.2)
            .with_out_of_range_ids(0.2);
        let (g, q) = parse_edge_list_lenient(plan.corrupted_reader(&clean));
        assert!(!q.is_empty(), "armed plan must corrupt something");
        assert!(!g.edges.is_empty(), "clean records must survive");
        assert_eq!(g.edges.len() as u64 + q.total(), 64, "every line is kept or quarantined");
    }
}
