//! Lenient-ingest quarantine accounting.
//!
//! The data plane has two ingest disciplines. [`IngestMode::Strict`] is
//! today's behavior: the first malformed record aborts the whole load or
//! batch with a typed error. [`IngestMode::Lenient`] keeps going: each bad
//! record is repaired or skipped and accounted in a bounded
//! [`QuarantineReport`] — per-[`QuarantineReason`] counts plus the first
//! few exemplars — so a corrupted input degrades a run with evidence
//! instead of killing it.
//!
//! The two modes are exact complements, and the test suite asserts it:
//! on any input, strict mode errors **iff** lenient mode quarantines at
//! least one record, and when the quarantine is empty the lenient result
//! is identical to the strict one.

use std::fmt;

/// How many exemplar records a report retains by default.
pub const DEFAULT_EXEMPLAR_CAP: usize = 8;

/// Longest exemplar / error detail retained, in characters. Longer input
/// is truncated with a trailing ellipsis so a hostile multi-megabyte line
/// cannot balloon an error value or a report.
pub const MAX_DETAIL_CHARS: usize = 96;

/// Truncates `detail` to [`MAX_DETAIL_CHARS`] characters, appending `…`
/// when anything was cut.
#[must_use]
pub fn truncate_detail(detail: &str) -> String {
    let mut out = String::new();
    for (taken, ch) in detail.chars().enumerate() {
        if taken == MAX_DETAIL_CHARS {
            out.push('…');
            return out;
        }
        out.push(ch);
    }
    out
}

/// How the data plane treats malformed records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IngestMode {
    /// Reject the whole input on the first bad record (typed error).
    #[default]
    Strict,
    /// Repair or skip each bad record into a [`QuarantineReport`].
    Lenient,
}

/// Why a record was quarantined. Each reason corresponds to exactly one
/// strict-mode error on the same surface (edge-list parsing, batch
/// construction, or batch application).
/// Marked `#[non_exhaustive]`: this enum crosses the service boundary,
/// so downstream matches must keep a wildcard arm for reasons added in
/// later releases.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QuarantineReason {
    /// An edge-list line did not parse (`LoadError::Parse`).
    MalformedLine,
    /// A vertex id parsed but overflows `VertexId`
    /// (`LoadError::TooManyVertices`).
    IdOverflow,
    /// The reader failed mid-stream (`LoadError::Io` after some lines were
    /// already consumed); the partial prefix is kept.
    IoInterrupted,
    /// A self-loop addition in a batch (`BatchError::SelfLoop`).
    SelfLoop,
    /// One `(src, dst)` pair both added and deleted in a batch
    /// (`BatchError::ConflictingUpdates`).
    ConflictingUpdate,
    /// An addition carried a NaN or infinite weight
    /// (`BatchError::NonFiniteWeight`).
    NonFiniteWeight,
    /// An update endpoint outside the graph's vertex range
    /// (`ApplyError::VertexOutOfBounds`).
    VertexOutOfBounds,
    /// A deletion of an edge that is not present
    /// (`ApplyError::MissingEdge`).
    AbsentDeletion,
    /// A wire line cut short by connection loss — EOF arrived mid-line or
    /// a torn write landed at a crash. Only the streaming-service surface
    /// produces this reason (file ingest never truncates mid-line without
    /// erroring); its strict counterpart is the connection-level framing
    /// error a strict wire endpoint would raise at EOF.
    TruncatedLine,
}

impl QuarantineReason {
    /// Every reason, in the stable order reports iterate.
    pub const ALL: [QuarantineReason; 9] = [
        QuarantineReason::MalformedLine,
        QuarantineReason::IdOverflow,
        QuarantineReason::IoInterrupted,
        QuarantineReason::SelfLoop,
        QuarantineReason::ConflictingUpdate,
        QuarantineReason::NonFiniteWeight,
        QuarantineReason::VertexOutOfBounds,
        QuarantineReason::AbsentDeletion,
        QuarantineReason::TruncatedLine,
    ];

    /// Stable lower-snake label (also the observability key suffix:
    /// `quarantine.<label>`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QuarantineReason::MalformedLine => "malformed_line",
            QuarantineReason::IdOverflow => "id_overflow",
            QuarantineReason::IoInterrupted => "io_interrupted",
            QuarantineReason::SelfLoop => "self_loop",
            QuarantineReason::ConflictingUpdate => "conflicting_update",
            QuarantineReason::NonFiniteWeight => "non_finite_weight",
            QuarantineReason::VertexOutOfBounds => "vertex_out_of_bounds",
            QuarantineReason::AbsentDeletion => "absent_deletion",
            QuarantineReason::TruncatedLine => "truncated_line",
        }
    }

    fn index(self) -> usize {
        QuarantineReason::ALL.iter().position(|&r| r == self).unwrap_or(0)
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One retained exemplar of a quarantined record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRecord {
    /// Why it was quarantined.
    pub reason: QuarantineReason,
    /// 1-based source line, when the record came from an edge-list file.
    pub line: Option<usize>,
    /// Truncated copy of the offending content (≤ [`MAX_DETAIL_CHARS`]).
    pub detail: String,
}

/// Bounded accounting of everything lenient ingest repaired or skipped.
///
/// Counts are exact; exemplars are capped (first-N in arrival order) so a
/// hostile input cannot grow the report without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineReport {
    counts: [u64; QuarantineReason::ALL.len()],
    exemplars: Vec<QuarantinedRecord>,
    exemplar_cap: usize,
}

impl Default for QuarantineReport {
    fn default() -> Self {
        Self::new()
    }
}

impl QuarantineReport {
    /// An empty report with the default exemplar cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_exemplar_cap(DEFAULT_EXEMPLAR_CAP)
    }

    /// An empty report retaining at most `cap` exemplars.
    #[must_use]
    pub fn with_exemplar_cap(cap: usize) -> Self {
        Self { counts: [0; QuarantineReason::ALL.len()], exemplars: Vec::new(), exemplar_cap: cap }
    }

    /// Records one quarantined record. `detail` is truncated to
    /// [`MAX_DETAIL_CHARS`]; the exemplar is kept only while under the cap.
    pub fn record(&mut self, reason: QuarantineReason, line: Option<usize>, detail: &str) {
        self.counts[reason.index()] += 1;
        if self.exemplars.len() < self.exemplar_cap {
            self.exemplars.push(QuarantinedRecord {
                reason,
                line,
                detail: truncate_detail(detail),
            });
        }
    }

    /// Total quarantined records across all reasons.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Quarantined records for one reason.
    #[must_use]
    pub fn count(&self, reason: QuarantineReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Whether nothing was quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// `(reason, count)` pairs with a non-zero count, in stable order.
    pub fn counts(&self) -> impl Iterator<Item = (QuarantineReason, u64)> + '_ {
        QuarantineReason::ALL.iter().map(|&r| (r, self.count(r))).filter(|&(_, n)| n > 0)
    }

    /// The retained exemplars, in arrival order (at most the cap).
    #[must_use]
    pub fn exemplars(&self) -> &[QuarantinedRecord] {
        &self.exemplars
    }

    /// Folds another report into this one. Counts add; exemplars append
    /// up to this report's cap.
    pub fn merge(&mut self, other: &QuarantineReport) {
        for (i, n) in other.counts.iter().enumerate() {
            self.counts[i] += n;
        }
        for ex in &other.exemplars {
            if self.exemplars.len() >= self.exemplar_cap {
                break;
            }
            self.exemplars.push(ex.clone());
        }
    }

    /// One-line human-readable summary, e.g.
    /// `"3 quarantined (absent_deletion: 2, non_finite_weight: 1)"`.
    /// Empty string when nothing was quarantined.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let parts: Vec<String> =
            self.counts().map(|(r, n)| format!("{}: {n}", r.label())).collect();
        format!("{} quarantined ({})", self.total(), parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_caps_hostile_details() {
        let long = "x".repeat(500);
        let t = truncate_detail(&long);
        assert_eq!(t.chars().count(), MAX_DETAIL_CHARS + 1);
        assert!(t.ends_with('…'));
        assert_eq!(truncate_detail("short"), "short");
        // Multi-byte chars must not split.
        let uni = "é".repeat(200);
        assert!(truncate_detail(&uni).ends_with('…'));
    }

    #[test]
    fn counts_are_exact_and_exemplars_bounded() {
        let mut q = QuarantineReport::with_exemplar_cap(2);
        for i in 0..5 {
            q.record(QuarantineReason::AbsentDeletion, Some(i), &format!("del {i}"));
        }
        q.record(QuarantineReason::MalformedLine, None, "garbage");
        assert_eq!(q.total(), 6);
        assert_eq!(q.count(QuarantineReason::AbsentDeletion), 5);
        assert_eq!(q.count(QuarantineReason::MalformedLine), 1);
        assert_eq!(q.exemplars().len(), 2, "cap holds");
        assert_eq!(q.exemplars()[0].detail, "del 0");
        assert!(!q.is_empty());
    }

    #[test]
    fn counts_iterator_skips_zero_reasons_in_stable_order() {
        let mut q = QuarantineReport::new();
        q.record(QuarantineReason::AbsentDeletion, None, "");
        q.record(QuarantineReason::MalformedLine, Some(3), "bad");
        q.record(QuarantineReason::MalformedLine, Some(4), "bad");
        let pairs: Vec<_> = q.counts().collect();
        assert_eq!(
            pairs,
            vec![(QuarantineReason::MalformedLine, 2), (QuarantineReason::AbsentDeletion, 1)]
        );
    }

    #[test]
    fn merge_adds_counts_and_respects_cap() {
        let mut a = QuarantineReport::with_exemplar_cap(3);
        a.record(QuarantineReason::SelfLoop, None, "a");
        let mut b = QuarantineReport::new();
        b.record(QuarantineReason::SelfLoop, None, "b1");
        b.record(QuarantineReason::IdOverflow, Some(9), "b2");
        b.record(QuarantineReason::IdOverflow, Some(10), "b3");
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(QuarantineReason::SelfLoop), 2);
        assert_eq!(a.count(QuarantineReason::IdOverflow), 2);
        assert_eq!(a.exemplars().len(), 3, "merge stops at the cap");
    }

    #[test]
    fn summary_reads_naturally() {
        let mut q = QuarantineReport::new();
        assert_eq!(q.summary(), "");
        q.record(QuarantineReason::NonFiniteWeight, None, "NaN");
        q.record(QuarantineReason::AbsentDeletion, None, "(1, 2)");
        q.record(QuarantineReason::AbsentDeletion, None, "(3, 4)");
        assert_eq!(q.summary(), "3 quarantined (non_finite_weight: 1, absent_deletion: 2)");
    }

    #[test]
    fn default_mode_is_strict() {
        assert_eq!(IngestMode::default(), IngestMode::Strict);
    }

    #[test]
    fn reason_labels_are_stable() {
        for r in QuarantineReason::ALL {
            assert!(!r.label().is_empty());
            assert_eq!(r.to_string(), r.label());
        }
    }
}
