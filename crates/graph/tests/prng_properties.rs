//! Property tests for the workload PRNG — internal infrastructure below
//! the `tdgraph::prelude` stability boundary, so tested with its crate.

use proptest::prelude::*;

use tdgraph_graph::prng::Xoshiro256StarStar;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prng_bounded_draws_respect_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Xoshiro256StarStar::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn prng_is_deterministic_per_seed(seed in any::<u64>()) {
        let mut a = Xoshiro256StarStar::new(seed);
        let mut b = Xoshiro256StarStar::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
