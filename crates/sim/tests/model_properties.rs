//! Property tests over the raw machine-model components — mesh distance,
//! address-space layout, cache residency — plus configuration validation.
//! These exercise simulator internals below the `tdgraph::prelude`
//! stability boundary, so they live with the crate that owns them.

use proptest::prelude::*;

use tdgraph_sim::address::{AddressSpace, Region};
use tdgraph_sim::cache::SetAssocCache;
use tdgraph_sim::machine::Machine;
use tdgraph_sim::noc::Mesh;
use tdgraph_sim::policy::PolicyKind;
use tdgraph_sim::SimConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mesh_hops_form_a_metric(dim in 1usize..12, a in 0usize..144, b in 0usize..144, c in 0usize..144) {
        let mesh = Mesh::new(dim, 3);
        let (a, b, c) = (a % mesh.tiles(), b % mesh.tiles(), c % mesh.tiles());
        // Symmetry, identity, triangle inequality.
        prop_assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
        prop_assert_eq!(mesh.hops(a, a), 0);
        prop_assert!(mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c));
    }

    #[test]
    fn address_space_regions_roundtrip(
        vertices in 1usize..100_000,
        edges in 1usize..500_000,
        hot in 1usize..1024,
        index in 0u64..64,
    ) {
        let a = AddressSpace::layout(vertices, edges, hot);
        for r in Region::ALL {
            let addr = a.addr(r, index);
            prop_assert!(addr < a.total_bytes());
            prop_assert_eq!(a.region_of(addr), Some(r));
        }
    }

    #[test]
    fn cache_contains_agrees_with_access_outcome(
        lines in proptest::collection::vec(0u64..256, 1..200),
        sets in 1usize..16,
        ways in 1usize..8,
    ) {
        let mut c = SetAssocCache::new(sets, ways, PolicyKind::Lru);
        let mut resident = std::collections::HashSet::new();
        for &l in &lines {
            let out = c.access(l, 0, false, Region::VertexStates);
            // A hit must have been predicted by our resident model; a line
            // the model says is absent must miss.
            prop_assert_eq!(out.hit, resident.contains(&l));
            resident.insert(l);
            if let Some(ev) = out.evicted {
                prop_assert!(resident.remove(&ev.line), "evicted a non-resident line");
            }
            prop_assert!(c.contains(l));
        }
        // The model and the cache agree on every line's residency.
        for l in 0u64..256 {
            prop_assert_eq!(c.contains(l), resident.contains(&l));
        }
    }
}

#[test]
fn invalid_machine_configurations_panic() {
    // Mesh too small for the cores.
    assert!(std::panic::catch_unwind(|| {
        let mut cfg = SimConfig::table1();
        cfg.mesh_dim = 3;
        Machine::new(cfg, AddressSpace::layout(16, 16, 4))
    })
    .is_err());
    // More cores than the 64-bit directory mask supports.
    assert!(std::panic::catch_unwind(|| {
        let mut cfg = SimConfig::table1();
        cfg.cores = 65;
        cfg.mesh_dim = 9;
        Machine::new(cfg, AddressSpace::layout(16, 16, 4))
    })
    .is_err());
}
