//! Mesh network-on-chip model (Table 1: 8×8 mesh, X-Y routing, 3 cycles/hop).

/// An `dim × dim` mesh with X-Y dimension-ordered routing. Cores and LLC
/// banks are co-located on tiles (one bank per tile, Knights-Landing-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    dim: usize,
    hop_cycles: u64,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize, hop_cycles: u64) -> Self {
        assert!(dim > 0, "mesh dimension must be positive");
        Self { dim, hop_cycles }
    }

    /// Number of tiles.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.dim * self.dim
    }

    /// `(x, y)` coordinates of a tile id.
    #[must_use]
    pub fn coords(&self, tile: usize) -> (usize, usize) {
        (tile % self.dim, tile / self.dim)
    }

    /// Manhattan hop count between two tiles under X-Y routing.
    #[must_use]
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (fx, fy) = self.coords(from % self.tiles());
        let (tx, ty) = self.coords(to % self.tiles());
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// LLC bank owning a cache line (address-hashed across all tiles).
    #[must_use]
    pub fn bank_of(&self, line: u64) -> usize {
        // Multiplicative hash spreads sequential lines over banks.
        ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % self.tiles()
    }

    /// Round-trip cycles for a request from `core`'s tile to the bank of
    /// `line` and back.
    #[must_use]
    pub fn round_trip_cycles(&self, core: usize, line: u64) -> u64 {
        2 * self.hops(core, self.bank_of(line)) * self.hop_cycles
    }

    /// One-way hop cycles between two tiles (invalidation traffic).
    #[must_use]
    pub fn one_way_cycles(&self, from: usize, to: usize) -> u64 {
        self.hops(from, to) * self.hop_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_and_hops() {
        let m = Mesh::new(8, 3);
        assert_eq!(m.tiles(), 64);
        assert_eq!(m.coords(0), (0, 0));
        assert_eq!(m.coords(63), (7, 7));
        assert_eq!(m.hops(0, 63), 14);
        assert_eq!(m.hops(9, 9), 0);
    }

    #[test]
    fn hops_are_symmetric() {
        let m = Mesh::new(8, 3);
        for a in [0usize, 7, 13, 42, 63] {
            for b in [0usize, 7, 13, 42, 63] {
                assert_eq!(m.hops(a, b), m.hops(b, a));
            }
        }
    }

    #[test]
    fn bank_hash_spreads_lines() {
        let m = Mesh::new(8, 3);
        let mut counts = vec![0usize; m.tiles()];
        for line in 0..64_000u64 {
            counts[m.bank_of(line)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 500 && *max < 1500, "bank spread min={min} max={max}");
    }

    #[test]
    fn round_trip_is_twice_one_way() {
        let m = Mesh::new(4, 3);
        let line = 12345;
        let bank = m.bank_of(line);
        assert_eq!(m.round_trip_cycles(0, line), 2 * m.one_way_cycles(0, bank));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = Mesh::new(0, 3);
    }
}
