//! The assembled many-core machine.
//!
//! [`Machine`] wires the per-core L1/L2 caches, the banked shared LLC, the
//! mesh NoC, the directory-based coherence model, and the DRAM bandwidth
//! envelope into a single access API. Engines issue typed accesses
//! (`region` + element index); the machine computes addresses, walks the
//! hierarchy, charges latencies to the issuing timeline (core or paired
//! accelerator), and maintains all statistics.

use tdgraph_graph::partition::ShardPlan;
use tdgraph_obs::Snapshot;

use crate::address::{AddressSpace, Region};
use crate::cache::SetAssocCache;
use crate::config::SimConfig;
#[allow(deprecated)]
use crate::exec::ExecMode;
use crate::exec::{ExecConfig, ExecPipelineReport, Pipeline};
use crate::memory::DramModel;
use crate::noc::Mesh;
use crate::stats::{Actor, MachineStats, Op, PhaseKind, TimeBreakdown};
use crate::trace::{AccessTrace, ServiceLevel, TraceEntry};

/// A simulated many-core processor with per-core accelerator timelines.
#[derive(Debug)]
pub struct Machine {
    cfg: SimConfig,
    layout: AddressSpace,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    mesh: Mesh,
    dram: DramModel,
    /// Sharer bitmask per line (index = line id). Supports ≤ 64 cores.
    directory: Vec<u64>,
    core_phase: Vec<u64>,
    accel_phase: Vec<u64>,
    breakdown: TimeBreakdown,
    stats: MachineStats,
    trace: Option<AccessTrace>,
    /// The host-parallel record/replay pipeline, when constructed with a
    /// sharded [`ExecConfig`]. While active, `l1`/`l2`/`llc`/`dram` are
    /// placeholders owned by the pipeline workers; [`Machine::finish`]
    /// merges them back, after which all accessors report the exact
    /// serial values.
    pipeline: Option<Pipeline>,
    /// Wall-clock spent spawning the pipeline (threads + cache hand-off);
    /// copied into the report's `setup` at [`Machine::finish`].
    pipeline_setup: std::time::Duration,
    shard_telemetry: Option<Snapshot>,
    shard_snapshots: Vec<(u64, Snapshot)>,
    exec_report: Option<ExecPipelineReport>,
}

impl Machine {
    /// Builds a machine from a configuration and an address-space layout.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or has more than 64 cores.
    #[must_use]
    pub fn new(cfg: SimConfig, layout: AddressSpace) -> Self {
        cfg.validate();
        assert!(cfg.cores <= 64, "directory bitmask supports at most 64 cores");
        let l1 = (0..cfg.cores)
            .map(|_| SetAssocCache::new(cfg.l1d.sets(), cfg.l1d.ways, cfg.l1d.policy))
            .collect();
        let l2 = (0..cfg.cores)
            .map(|_| SetAssocCache::new(cfg.l2.sets(), cfg.l2.ways, cfg.l2.policy))
            .collect();
        let llc = SetAssocCache::new(cfg.llc.sets(), cfg.llc.ways, cfg.llc.policy);
        let mesh = Mesh::new(cfg.mesh_dim, cfg.hop_cycles);
        let dram = DramModel::new(cfg.memory);
        let lines = (layout.total_bytes() / 64 + 1) as usize;
        Self {
            core_phase: vec![0; cfg.cores],
            accel_phase: vec![0; cfg.cores],
            directory: vec![0; lines],
            l1,
            l2,
            llc,
            mesh,
            dram,
            layout,
            breakdown: TimeBreakdown::default(),
            stats: MachineStats::default(),
            trace: None,
            pipeline: None,
            pipeline_setup: std::time::Duration::ZERO,
            shard_telemetry: None,
            shard_snapshots: Vec::new(),
            exec_report: None,
            cfg,
        }
    }

    /// Builds a machine for the given [`ExecConfig`].
    ///
    /// A non-sharded config is identical to [`Machine::new`]. A sharded
    /// one spawns the record/replay pipeline: the calling thread records
    /// accesses while host worker threads replay private caches and
    /// reduce shared state (one sequential reducer, or
    /// [`ExecConfig::reduce_lanes`] key-partitioned lanes behind a
    /// coordinator); `plan` groups cores into replay shards (regrouped if
    /// its shard count differs from the pipeline's). Output after
    /// [`Machine::finish`] is byte-identical to serial for every config
    /// and plan.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the exec config fails
    /// [`ExecConfig::validate`], or the plan does not cover every core.
    #[must_use]
    pub fn with_exec_config(
        cfg: SimConfig,
        layout: AddressSpace,
        exec: ExecConfig,
        plan: &ShardPlan,
    ) -> Self {
        if !exec.is_sharded() {
            return Self::new(cfg, layout);
        }
        if let Err(e) = exec.validate() {
            panic!("invalid ExecConfig: {e}");
        }
        assert!(
            layout.total_bytes() / 64 <= crate::exec::MAX_TOUCH_LINE,
            "address space too large for packed boundary touches"
        );
        let t0 = std::time::Instant::now();
        let mut m = Self::new(cfg, layout);
        let l1 = std::mem::take(&mut m.l1);
        let l2 = std::mem::take(&mut m.l2);
        let llc = std::mem::replace(&mut m.llc, SetAssocCache::new(1, 1, m.cfg.llc.policy));
        let dram = std::mem::replace(&mut m.dram, DramModel::new(m.cfg.memory));
        m.pipeline = Some(Pipeline::spawn(&m.cfg, plan, exec, l1, l2, llc, dram));
        m.pipeline_setup = t0.elapsed();
        m
    }

    /// Builds a machine for the given [`ExecMode`] (legacy entry point).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, `Sharded(0)` is requested,
    /// or the plan does not cover every core.
    #[deprecated(note = "use `Machine::with_exec_config` with an `ExecConfig`")]
    #[allow(deprecated)]
    #[must_use]
    pub fn with_exec(
        cfg: SimConfig,
        layout: AddressSpace,
        exec: ExecMode,
        plan: &ShardPlan,
    ) -> Self {
        if let ExecMode::Sharded(n) = exec {
            assert!(n >= 1, "ExecMode::Sharded needs at least one worker thread");
        }
        Self::with_exec_config(cfg, layout, ExecConfig::from(exec), plan)
    }

    /// Enables access tracing with a bounded ring buffer.
    ///
    /// # Panics
    ///
    /// Panics in sharded execution (per-access service levels are decided
    /// on worker threads there).
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(self.pipeline.is_none(), "access tracing is unavailable under ExecMode::Sharded");
        self.trace = Some(AccessTrace::new(capacity));
    }

    /// The recorded access trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&AccessTrace> {
        self.trace.as_ref()
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cfg.cores
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The address-space layout in use.
    #[must_use]
    pub fn layout(&self) -> &AddressSpace {
        &self.layout
    }

    /// Issues a typed access: element `index` of `region`, by `actor` on
    /// `core`. Returns the latency charged to that actor's timeline.
    ///
    /// Under [`ExecMode::Sharded`] the access is recorded for replay and
    /// the return value is a nominal 0 (engines never branch on it; the
    /// exact latency is charged on the worker threads and merged at
    /// [`Machine::finish`]).
    ///
    /// # Panics
    ///
    /// Panics if `core >= cores()`.
    pub fn access(
        &mut self,
        core: usize,
        actor: Actor,
        region: Region,
        index: u64,
        write: bool,
    ) -> u64 {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let addr = self.layout.addr(region, index);
        let line = addr >> 6;
        let word = ((addr >> 2) & 0xF) as u8;
        self.stats.accesses += 1;
        self.stats.count_region(region);
        if self.pipeline.is_some() {
            self.record_access(core, actor, region, line, word, write);
            return 0;
        }

        let mut level = ServiceLevel::L1;
        let mut latency = self.cfg.l1d.latency;
        let l1_out = self.l1[core].access(line, word, write, region);
        if l1_out.hit {
            self.stats.l1_hits += 1;
            self.llc.touch_word(line, word);
        } else {
            latency += self.cfg.l2.latency;
            let l2_out = self.l2[core].access(line, word, write, region);
            level = ServiceLevel::L2;
            if l2_out.hit {
                self.stats.l2_hits += 1;
                self.llc.touch_word(line, word);
            } else {
                // Travel to the line's LLC bank.
                let noc = self.mesh.round_trip_cycles(core, line);
                self.stats.noc_hop_cycles += noc;
                latency += noc + self.cfg.llc.latency;
                let llc_out = self.llc.access(line, word, write, region);
                level = ServiceLevel::Llc;
                if llc_out.hit {
                    self.stats.llc_hits += 1;
                } else {
                    self.stats.llc_misses += 1;
                    level = ServiceLevel::Memory;
                    latency += self.dram.read_line();
                }
                if let Some(ev) = llc_out.evicted {
                    self.retire_llc_line(ev);
                }
            }
        }

        if write {
            self.invalidate_remote_sharers(core, line);
        }
        let slot = line as usize % self.directory.len();
        self.directory[slot] |= 1 << core;

        let charged = match actor {
            Actor::Core => latency,
            Actor::Accel => latency.div_ceil(self.cfg.accel_mlp),
        };
        self.timeline(core, actor, charged);
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEntry { core, actor, region, index, write, level, latency: charged });
        }
        charged
    }

    /// Sharded-mode record path: maintain the directory (a pure function
    /// of the access stream), queue invalidation candidates for victim
    /// cores, and append the access event. The directory reset on a write
    /// is skipped when there are no other sharers — in that case the slot
    /// already holds at most this core's bit, so `|=` below yields the
    /// identical serial state.
    fn record_access(
        &mut self,
        core: usize,
        actor: Actor,
        region: Region,
        line: u64,
        word: u8,
        write: bool,
    ) {
        let slot = line as usize % self.directory.len();
        if write {
            let sharers = self.directory[slot] & !(1u64 << core);
            if sharers != 0 {
                let Some(pipeline) = self.pipeline.as_mut() else { return };
                let mut mask = sharers;
                while mask != 0 {
                    let other = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    if other >= self.cfg.cores {
                        continue;
                    }
                    pipeline.push_inval(other, core, line);
                }
                self.directory[slot] = 1 << core;
            }
        }
        self.directory[slot] |= 1 << core;
        let Some(pipeline) = self.pipeline.as_mut() else { return };
        pipeline.record(core, actor, region, line, word, write);
    }

    fn retire_llc_line(&mut self, ev: crate::cache::EvictedLine) {
        if ev.region.is_state_region() {
            self.stats.state_lines.record(ev.touched_words);
        }
        if ev.dirty {
            self.dram.writeback_line();
        }
    }

    fn invalidate_remote_sharers(&mut self, writer: usize, line: u64) {
        let slot = line as usize % self.directory.len();
        let sharers = self.directory[slot] & !(1u64 << writer);
        if sharers == 0 {
            return;
        }
        let mut mask = sharers;
        while mask != 0 {
            let other = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if other >= self.cfg.cores {
                continue;
            }
            let mut invalidated = false;
            if self.l1[other].invalidate(line).is_some() {
                invalidated = true;
            }
            if self.l2[other].invalidate(line).is_some() {
                invalidated = true;
            }
            if invalidated {
                self.stats.invalidations += 1;
                let cost = self.mesh.one_way_cycles(writer, other);
                self.stats.noc_hop_cycles += cost;
            }
        }
        self.directory[slot] = 1 << writer;
    }

    /// Charges `count` occurrences of `op` to `actor`'s timeline on `core`.
    /// Core ops use the [`crate::config::InstrCost`] table; accelerator ops
    /// cost 1 cycle each (hardwired pipeline stages).
    pub fn compute(&mut self, core: usize, actor: Actor, op: Op, count: u64) {
        self.stats.op_counts[op.index()] += count;
        let per_op = match actor {
            Actor::Core => match op {
                Op::EdgeProcess => self.cfg.instr.edge_process,
                Op::StateUpdate => self.cfg.instr.state_update,
                Op::FrontierOp => self.cfg.instr.frontier_op,
                Op::HashProbe => self.cfg.instr.hash_probe,
                Op::ScheduleOp => self.cfg.instr.schedule_op,
                Op::BranchMiss => self.cfg.instr.branch_miss,
            },
            Actor::Accel => 1,
        };
        self.timeline(core, actor, per_op * count);
    }

    /// Adds raw cycles to a timeline (stall modeling).
    pub fn add_cycles(&mut self, core: usize, actor: Actor, cycles: u64) {
        self.timeline(core, actor, cycles);
    }

    fn timeline(&mut self, core: usize, actor: Actor, cycles: u64) {
        match actor {
            Actor::Core => self.core_phase[core] += cycles,
            Actor::Accel => self.accel_phase[core] += cycles,
        }
    }

    /// Ends a parallel phase: each core's time is the max of its core and
    /// accelerator timelines (they overlap); the phase length is the max
    /// over cores, then stretched by the DRAM bandwidth envelope. Returns
    /// the final phase length and accumulates it into the breakdown.
    ///
    /// Under [`ExecMode::Sharded`] the phase marker is shipped down the
    /// pipeline and a nominal 0 is returned; use
    /// [`Machine::end_phase_synced`] when the caller consumes the phase
    /// length.
    pub fn end_phase(&mut self, kind: PhaseKind) -> u64 {
        if let Some(pipeline) = self.pipeline.as_mut() {
            let cores = self.core_phase.len();
            let main_core = std::mem::replace(&mut self.core_phase, vec![0; cores]);
            let main_accel = std::mem::replace(&mut self.accel_phase, vec![0; cores]);
            pipeline.end_phase(kind, main_core, main_accel);
            return 0;
        }
        let compute = self
            .core_phase
            .iter()
            .zip(&self.accel_phase)
            .map(|(&c, &a)| c.max(a))
            .max()
            .unwrap_or(0);
        let cycles = self.dram.close_phase(compute);
        self.core_phase.iter_mut().for_each(|c| *c = 0);
        self.accel_phase.iter_mut().for_each(|c| *c = 0);
        self.breakdown.add(kind, cycles);
        cycles
    }

    /// Like [`Machine::end_phase`], but under sharded execution blocks
    /// until the phase is reduced and returns the exact serial phase
    /// length. Identical to `end_phase` in serial mode.
    pub fn end_phase_synced(&mut self, kind: PhaseKind) -> u64 {
        if self.pipeline.is_some() {
            self.end_phase(kind);
            let Some(pipeline) = self.pipeline.as_mut() else { return 0 };
            pipeline.drain_last_phase()
        } else {
            self.end_phase(kind)
        }
    }

    /// Flushes the LLC so resident state lines are counted in the
    /// utilization metric. Call once at the end of a run.
    ///
    /// Under [`ExecMode::Sharded`] this first drains and joins the
    /// pipeline workers, merging replayed cache/NoC/DRAM state back into
    /// the machine; only after `finish` do `stats`, `breakdown`,
    /// `total_cycles`, and `dram` report complete (serial-identical)
    /// values.
    pub fn finish(&mut self) {
        if let Some(pipeline) = self.pipeline.take() {
            let mut fin = pipeline.finalize();
            fin.report.setup = self.pipeline_setup;
            self.exec_report = Some(fin.report);
            self.llc = fin.llc;
            self.dram = fin.dram;
            self.breakdown = fin.breakdown;
            self.stats.l1_hits += fin.l1_hits;
            self.stats.l2_hits += fin.l2_hits;
            self.stats.llc_hits += fin.llc_hits;
            self.stats.llc_misses += fin.llc_misses;
            self.stats.noc_hop_cycles += fin.noc_hop_cycles;
            self.stats.invalidations += fin.invalidations;
            self.stats.state_lines.lines += fin.state_lines.lines;
            self.stats.state_lines.touched_words += fin.state_lines.touched_words;
            self.shard_telemetry = Some(fin.shard_telemetry);
            self.shard_snapshots = fin.shard_snapshots;
        }
        for ev in self.llc.flush() {
            if ev.region.is_state_region() {
                self.stats.state_lines.record(ev.touched_words);
            }
            if ev.dirty {
                self.dram.writeback_line();
            }
        }
    }

    /// Machine statistics so far.
    #[must_use]
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Time breakdown over finished phases.
    #[must_use]
    pub fn breakdown(&self) -> &TimeBreakdown {
        &self.breakdown
    }

    /// Total cycles over all finished phases.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.breakdown.total()
    }

    /// DRAM model (for byte counters).
    #[must_use]
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// Merged per-shard replay telemetry (`sim.shard.*` counters), present
    /// after a sharded run's [`Machine::finish`]. Totals are independent
    /// of the worker-thread count; the merge is key-ordered and
    /// byte-stable, as the obs layer guarantees.
    #[must_use]
    pub fn shard_telemetry(&self) -> Option<&Snapshot> {
        self.shard_telemetry.as_ref()
    }

    /// The per-shard snapshots behind [`Machine::shard_telemetry`], in
    /// shard-key order. Empty for serial runs.
    #[must_use]
    pub fn shard_snapshots(&self) -> &[(u64, Snapshot)] {
        &self.shard_snapshots
    }

    /// Pipeline wall-clock/traffic telemetry (per-lane reduce walls,
    /// encoded-vs-raw boundary bytes, setup time), present after a
    /// sharded run's [`Machine::finish`]. Never part of the deterministic
    /// result surfaces — wall-clock varies run to run.
    #[must_use]
    pub fn exec_report(&self) -> Option<&ExecPipelineReport> {
        self.exec_report.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        let layout = AddressSpace::layout(4096, 16384, 64);
        Machine::new(SimConfig::small_test(), layout)
    }

    #[test]
    fn cold_access_misses_everywhere_then_hits_l1() {
        let mut m = machine();
        let lat0 = m.access(0, Actor::Core, Region::VertexStates, 0, false);
        assert!(lat0 >= m.config().memory.latency, "cold access must reach DRAM");
        assert_eq!(m.stats().llc_misses, 1);
        let lat1 = m.access(0, Actor::Core, Region::VertexStates, 0, false);
        assert_eq!(lat1, m.config().l1d.latency);
        assert_eq!(m.stats().l1_hits, 1);
    }

    #[test]
    fn same_line_different_words_hit() {
        let mut m = machine();
        m.access(0, Actor::Core, Region::VertexStates, 0, false);
        // States are 4 B; elements 0..16 share a line.
        let lat = m.access(0, Actor::Core, Region::VertexStates, 15, false);
        assert_eq!(lat, m.config().l1d.latency);
    }

    #[test]
    fn accel_access_is_cheaper_via_mlp() {
        let mut m = machine();
        let core_lat = m.access(0, Actor::Core, Region::NeighborArray, 0, false);
        let mut m2 = machine();
        let accel_lat = m2.access(0, Actor::Accel, Region::NeighborArray, 0, false);
        assert!(accel_lat < core_lat);
        let mlp = m2.config().accel_mlp;
        assert_eq!(accel_lat, core_lat.div_ceil(mlp));
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut m = machine();
        m.access(0, Actor::Core, Region::VertexStates, 0, false);
        m.access(1, Actor::Core, Region::VertexStates, 0, false);
        assert_eq!(m.stats().invalidations, 0);
        m.access(1, Actor::Core, Region::VertexStates, 0, true);
        assert_eq!(m.stats().invalidations, 1);
        // Core 0 must now re-fetch past L1/L2.
        let lat = m.access(0, Actor::Core, Region::VertexStates, 0, false);
        assert!(lat > m.config().l1d.latency + m.config().l2.latency);
    }

    #[test]
    fn phase_accounting_takes_max_over_cores_and_timelines() {
        let mut m = machine();
        m.add_cycles(0, Actor::Core, 100);
        m.add_cycles(1, Actor::Core, 40);
        m.add_cycles(1, Actor::Accel, 250);
        let t = m.end_phase(PhaseKind::Propagation);
        assert_eq!(t, 250);
        assert_eq!(m.breakdown().propagation_cycles, 250);
        // Counters reset.
        assert_eq!(m.end_phase(PhaseKind::Other), 0);
    }

    #[test]
    fn compute_charges_instr_costs() {
        let mut m = machine();
        m.compute(0, Actor::Core, Op::EdgeProcess, 10);
        let t = m.end_phase(PhaseKind::Propagation);
        assert_eq!(t, 10 * m.config().instr.edge_process);
        m.compute(0, Actor::Accel, Op::EdgeProcess, 10);
        assert_eq!(m.end_phase(PhaseKind::Propagation), 10);
        assert_eq!(m.stats().per_op(Op::EdgeProcess), 20);
    }

    #[test]
    fn finish_flushes_state_lines_into_utilization() {
        let mut m = machine();
        m.access(0, Actor::Core, Region::VertexStates, 0, false);
        m.access(0, Actor::Core, Region::VertexStates, 1, false);
        m.finish();
        let u = m.stats().state_lines;
        assert_eq!(u.lines, 1);
        assert_eq!(u.touched_words, 2);
    }

    #[test]
    fn bitvector_accesses_share_lines_heavily() {
        let mut m = machine();
        m.access(0, Actor::Core, Region::ActiveVertices, 0, false);
        // Bits 0..511 live in the same 64 B line.
        let lat = m.access(0, Actor::Core, Region::ActiveVertices, 511, false);
        assert_eq!(lat, m.config().l1d.latency);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let mut m = machine();
        m.access(99, Actor::Core, Region::VertexStates, 0, false);
    }

    #[test]
    fn trace_records_levels_when_enabled() {
        use crate::trace::ServiceLevel;
        let mut m = machine();
        assert!(m.trace().is_none());
        m.enable_trace(8);
        m.access(0, Actor::Core, Region::VertexStates, 0, false); // memory
        m.access(0, Actor::Core, Region::VertexStates, 0, false); // L1
        let t = m.trace().unwrap();
        let levels: Vec<ServiceLevel> = t.entries().map(|e| e.level).collect();
        assert_eq!(levels, vec![ServiceLevel::Memory, ServiceLevel::L1]);
        assert!(t.entries().all(|e| e.region == Region::VertexStates));
    }
}
