//! Simulated system configuration (Table 1 of the paper).

use crate::error::SimError;
use crate::policy::PolicyKind;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
    /// Replacement policy.
    pub policy: PolicyKind,
}

impl CacheConfig {
    /// Number of sets for 64 B lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    #[must_use]
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / 64;
        assert!(lines.is_multiple_of(self.ways), "cache geometry must divide evenly");
        lines / self.ways
    }
}

/// DRAM subsystem model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Number of DDR4 channels (Table 1: 12-channel DDR4-3200 CL17).
    pub channels: usize,
    /// Idle access latency in core cycles (row activation + CAS + transfer
    /// + controller overhead at 2.5 GHz).
    pub latency: u64,
    /// Peak bytes per core cycle per channel. DDR4-3200 moves 8 B per memory
    /// clock edge = 25.6 GB/s per channel = 10.24 B per 2.5 GHz core cycle.
    pub bytes_per_cycle_per_channel: f64,
}

impl MemoryConfig {
    /// Aggregate peak bandwidth in bytes per core cycle.
    #[must_use]
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * self.bytes_per_cycle_per_channel
    }
}

/// Per-operation instruction-cost table for the core timing model.
///
/// These charge the *software* cost of each algorithmic step; accelerator
/// units have their own (much smaller) costs because their operations are
/// hardwired pipeline stages. Values are documented estimates for a
/// Skylake-like OOO core running the optimized (SIMD + unrolled) Ligra-o
/// binary the paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrCost {
    /// Process one edge (load neighbor id, compute candidate, compare):
    /// amortized with SIMD/unrolling.
    pub edge_process: u64,
    /// Commit one vertex-state update (store + bookkeeping).
    pub state_update: u64,
    /// Push/pop one work item on the software frontier/worklist.
    pub frontier_op: u64,
    /// One software hash-table probe (hot-vertex index lookup).
    pub hash_probe: u64,
    /// Per-vertex scheduling overhead of a software engine iteration.
    pub schedule_op: u64,
    /// Data-dependent branch misprediction penalty charged on irregular
    /// control flow (software topology-driven traversal suffers these,
    /// §3.1 "Runtime Overhead").
    pub branch_miss: u64,
}

impl InstrCost {
    /// Default cost table.
    #[must_use]
    pub fn skylake_like() -> Self {
        Self {
            edge_process: 4,
            state_update: 3,
            frontier_op: 4,
            hash_probe: 10,
            schedule_op: 6,
            branch_miss: 14,
        }
    }
}

/// Full simulated-system configuration (Table 1) plus model knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of cores (Table 1: 64).
    pub cores: usize,
    /// Core frequency in GHz (for converting cycles to seconds).
    pub freq_ghz: f64,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Per-core private L2.
    pub l2: CacheConfig,
    /// Shared LLC (banked over the mesh).
    pub llc: CacheConfig,
    /// Mesh dimension (8 → 8×8 = 64 tiles).
    pub mesh_dim: usize,
    /// Cycles per mesh hop (Table 1: 3).
    pub hop_cycles: u64,
    /// DRAM model.
    pub memory: MemoryConfig,
    /// Core instruction-cost table.
    pub instr: InstrCost,
    /// Memory-level parallelism of an accelerator engine: its memory
    /// latencies are divided by this factor because the hardware pipelines
    /// outstanding fetches (prior prefetchers model the same effect).
    pub accel_mlp: u64,
}

impl SimConfig {
    /// The paper's Table 1 configuration.
    #[must_use]
    pub fn table1() -> Self {
        Self {
            cores: 64,
            freq_ghz: 2.5,
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 4,
                policy: PolicyKind::Lru,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                latency: 7,
                policy: PolicyKind::Lru,
            },
            llc: CacheConfig {
                size_bytes: 64 * 1024 * 1024,
                ways: 16,
                latency: 27,
                policy: PolicyKind::Drrip,
            },
            mesh_dim: 8,
            hop_cycles: 3,
            memory: MemoryConfig { channels: 12, latency: 160, bytes_per_cycle_per_channel: 10.24 },
            instr: InstrCost::skylake_like(),
            accel_mlp: 8,
        }
    }

    /// The Table 1 machine with cache capacities scaled down 32× (L1 4 KB,
    /// L2 8 KB, LLC 128 KB), matching the 1/16–1/32 scaling of the synthetic datasets
    /// so the working-set:cache ratio — which drives every memory-system
    /// effect the paper measures — is preserved. Core count, latencies,
    /// NoC, and bandwidth stay at Table 1 values. This is the default
    /// machine for the experiment runners (see DESIGN.md §3).
    #[must_use]
    pub fn scaled_reference() -> Self {
        let mut cfg = Self::table1();
        cfg.l1d.size_bytes = 4 * 1024;
        cfg.l2.size_bytes = 8 * 1024;
        cfg.llc.size_bytes = 128 * 1024;
        cfg
    }

    /// A scaled-down machine for unit tests: 4 cores, small caches, same
    /// relative geometry. Keeps tests fast while exercising every code path.
    #[must_use]
    pub fn small_test() -> Self {
        let mut cfg = Self::table1();
        cfg.cores = 4;
        cfg.mesh_dim = 2;
        cfg.l1d.size_bytes = 4 * 1024;
        cfg.l2.size_bytes = 16 * 1024;
        cfg.llc.size_bytes = 256 * 1024;
        cfg.memory.channels = 2;
        cfg
    }

    /// Converts cycles at the configured frequency to milliseconds.
    #[must_use]
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e6)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the mesh cannot host the cores or a cache geometry is
    /// inconsistent. Use [`SimConfig::try_validate`] for a non-panicking
    /// check.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Validates internal consistency, returning the first inconsistency
    /// as a typed [`SimError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the offending field.
    pub fn try_validate(&self) -> Result<(), SimError> {
        if self.cores == 0 {
            return Err(SimError::InvalidConfig {
                field: "cores",
                reason: "core count must be >= 1".into(),
            });
        }
        if self.mesh_dim * self.mesh_dim < self.cores {
            return Err(SimError::InvalidConfig {
                field: "mesh_dim",
                reason: format!(
                    "mesh {}x{} cannot host {} cores",
                    self.mesh_dim, self.mesh_dim, self.cores
                ),
            });
        }
        for (field, cache) in [("l1d", &self.l1d), ("l2", &self.l2), ("llc", &self.llc)] {
            let lines = cache.size_bytes / 64;
            if cache.ways == 0 || lines == 0 || !lines.is_multiple_of(cache.ways) {
                return Err(SimError::InvalidConfig {
                    field,
                    reason: format!(
                        "cache geometry must divide evenly ({} bytes, {} ways)",
                        cache.size_bytes, cache.ways
                    ),
                });
            }
        }
        if self.accel_mlp < 1 {
            return Err(SimError::InvalidConfig {
                field: "accel_mlp",
                reason: "accel_mlp must be >= 1".into(),
            });
        }
        if !(self.freq_ghz.is_finite() && self.freq_ghz > 0.0) {
            return Err(SimError::InvalidConfig {
                field: "freq_ghz",
                reason: format!("frequency must be positive, got {}", self.freq_ghz),
            });
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SimConfig::table1();
        assert_eq!(c.cores, 64);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.llc.size_bytes, 64 * 1024 * 1024);
        assert_eq!(c.llc.ways, 16);
        assert_eq!(c.llc.latency, 27);
        assert_eq!(c.mesh_dim, 8);
        assert_eq!(c.hop_cycles, 3);
        assert_eq!(c.memory.channels, 12);
        c.validate();
    }

    #[test]
    fn cache_sets_compute() {
        let c = SimConfig::table1();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.llc.sets(), 65536);
    }

    #[test]
    fn small_test_is_valid() {
        SimConfig::small_test().validate();
    }

    #[test]
    fn cycles_to_ms_conversion() {
        let c = SimConfig::table1();
        assert!((c.cycles_to_ms(2_500_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn peak_bandwidth_is_aggregate() {
        let m = SimConfig::table1().memory;
        assert!((m.peak_bytes_per_cycle() - 122.88).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mesh")]
    fn invalid_mesh_panics() {
        let mut c = SimConfig::table1();
        c.mesh_dim = 2;
        c.validate();
    }

    #[test]
    fn try_validate_reports_typed_errors() {
        let mut c = SimConfig::table1();
        c.mesh_dim = 2;
        let err = c.try_validate().unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { field: "mesh_dim", .. }));

        let mut c = SimConfig::table1();
        c.cores = 0;
        assert!(matches!(
            c.try_validate().unwrap_err(),
            SimError::InvalidConfig { field: "cores", .. }
        ));

        let mut c = SimConfig::table1();
        c.l2.ways = 7;
        assert!(matches!(
            c.try_validate().unwrap_err(),
            SimError::InvalidConfig { field: "l2", .. }
        ));

        let mut c = SimConfig::table1();
        c.freq_ghz = 0.0;
        assert!(matches!(
            c.try_validate().unwrap_err(),
            SimError::InvalidConfig { field: "freq_ghz", .. }
        ));

        assert_eq!(SimConfig::small_test().try_validate(), Ok(()));
    }
}
