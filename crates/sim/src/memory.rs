//! DRAM subsystem model: fixed service latency plus a bandwidth envelope.
//!
//! Individual line fetches are charged [`MemoryConfig::latency`]; aggregate
//! throughput is bounded by the channel count via a roofline adjustment at
//! phase boundaries — if a phase moved more bytes than the peak bandwidth
//! allows in its compute time, the phase is stretched to the bandwidth
//! bound. This reproduces the paper's bandwidth-sensitivity behaviour
//! (Fig 20) without a cycle-level DRAM scheduler.

use crate::config::MemoryConfig;

/// Tracks DRAM traffic and applies the bandwidth envelope.
#[derive(Debug, Clone)]
pub struct DramModel {
    config: MemoryConfig,
    phase_bytes: u64,
    total_bytes: u64,
    total_reads: u64,
    total_writebacks: u64,
}

impl DramModel {
    /// Creates a model for the given channel configuration.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self { config, phase_bytes: 0, total_bytes: 0, total_reads: 0, total_writebacks: 0 }
    }

    /// The configured memory parameters.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Records a 64 B line read from memory; returns its service latency.
    pub fn read_line(&mut self) -> u64 {
        self.phase_bytes += 64;
        self.total_bytes += 64;
        self.total_reads += 1;
        self.config.latency
    }

    /// Records a 64 B dirty writeback (latency is off the critical path).
    pub fn writeback_line(&mut self) {
        self.phase_bytes += 64;
        self.total_bytes += 64;
        self.total_writebacks += 1;
    }

    /// Crate-internal: folds traffic counted remotely (by a reduction
    /// lane) into the open phase. Equivalent to `reads` calls to
    /// [`DramModel::read_line`] plus `writebacks` calls to
    /// [`DramModel::writeback_line`], in any order — per-line read latency
    /// is a constant, so only the counts matter.
    pub(crate) fn absorb_traffic(&mut self, reads: u64, writebacks: u64) {
        let bytes = 64 * (reads + writebacks);
        self.phase_bytes += bytes;
        self.total_bytes += bytes;
        self.total_reads += reads;
        self.total_writebacks += writebacks;
    }

    /// Ends a phase that took `compute_cycles` of overlapping execution;
    /// returns the phase duration after the bandwidth envelope is applied.
    pub fn close_phase(&mut self, compute_cycles: u64) -> u64 {
        let peak = self.config.peak_bytes_per_cycle();
        let bound =
            if peak > 0.0 { (self.phase_bytes as f64 / peak).ceil() as u64 } else { u64::MAX };
        self.phase_bytes = 0;
        compute_cycles.max(bound)
    }

    /// Total bytes moved (reads + writebacks).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total line reads.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.total_reads
    }

    /// Total dirty writebacks.
    #[must_use]
    pub fn total_writebacks(&self) -> u64 {
        self.total_writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(channels: usize) -> MemoryConfig {
        MemoryConfig { channels, latency: 160, bytes_per_cycle_per_channel: 10.24 }
    }

    #[test]
    fn read_charges_latency_and_counts_bytes() {
        let mut d = DramModel::new(cfg(12));
        assert_eq!(d.read_line(), 160);
        d.writeback_line();
        assert_eq!(d.total_bytes(), 128);
        assert_eq!(d.total_reads(), 1);
        assert_eq!(d.total_writebacks(), 1);
    }

    #[test]
    fn compute_bound_phase_is_unchanged() {
        let mut d = DramModel::new(cfg(12));
        for _ in 0..10 {
            d.read_line();
        }
        // 640 bytes over 1000 cycles needs only 0.64 B/cycle << 122.88.
        assert_eq!(d.close_phase(1000), 1000);
    }

    #[test]
    fn bandwidth_bound_phase_is_stretched() {
        let mut d = DramModel::new(cfg(1));
        for _ in 0..1000 {
            d.read_line();
        }
        // 64_000 bytes over 10 cycles at 10.24 B/cycle -> 6250 cycles.
        let t = d.close_phase(10);
        assert_eq!(t, 6250);
    }

    #[test]
    fn phase_bytes_reset_between_phases() {
        let mut d = DramModel::new(cfg(1));
        for _ in 0..1000 {
            d.read_line();
        }
        let _ = d.close_phase(1);
        assert_eq!(d.close_phase(7), 7, "second phase saw stale bytes");
    }

    #[test]
    fn more_channels_shorten_bound_phases() {
        let mut narrow = DramModel::new(cfg(3));
        let mut wide = DramModel::new(cfg(24));
        for _ in 0..10_000 {
            narrow.read_line();
            wide.read_line();
        }
        assert!(narrow.close_phase(1) > wide.close_phase(1));
    }
}
