//! Memory-access tracing for debugging and model inspection.
//!
//! When enabled on a [`crate::machine::Machine`], every typed access is
//! recorded into a bounded ring buffer together with its service level, so
//! tests and tools can inspect *why* an engine behaves as it does (e.g.
//! confirm that the VSCU really turned scattered state misses into
//! coalesced hits).

use crate::address::Region;
use crate::stats::Actor;

/// Where an access was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared LLC hit.
    Llc,
    /// DRAM fill.
    Memory,
}

/// One recorded access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Issuing core.
    pub core: usize,
    /// Core or paired accelerator.
    pub actor: Actor,
    /// Structure accessed.
    pub region: Region,
    /// Element index within the region.
    pub index: u64,
    /// Read or write.
    pub write: bool,
    /// Where it was serviced.
    pub level: ServiceLevel,
    /// Latency charged, in cycles.
    pub latency: u64,
}

/// A bounded ring buffer of [`TraceEntry`]s.
#[derive(Debug, Clone)]
pub struct AccessTrace {
    entries: std::collections::VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl AccessTrace {
    /// Creates a trace keeping the most recent `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self { entries: std::collections::VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Records an entry, evicting the oldest when full.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries displaced by the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Fraction of retained accesses to `region` serviced at `level`.
    #[must_use]
    pub fn service_share(&self, region: Region, level: ServiceLevel) -> f64 {
        let total = self.entries.iter().filter(|e| e.region == region).count();
        if total == 0 {
            return 0.0;
        }
        let at = self.entries.iter().filter(|e| e.region == region && e.level == level).count();
        at as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(index: u64, level: ServiceLevel) -> TraceEntry {
        TraceEntry {
            core: 0,
            actor: Actor::Core,
            region: Region::VertexStates,
            index,
            write: false,
            level,
            latency: 4,
        }
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let mut t = AccessTrace::new(3);
        for i in 0..5 {
            t.record(entry(i, ServiceLevel::L1));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let idxs: Vec<u64> = t.entries().map(|e| e.index).collect();
        assert_eq!(idxs, vec![2, 3, 4]);
    }

    #[test]
    fn service_share_by_region_and_level() {
        let mut t = AccessTrace::new(16);
        t.record(entry(0, ServiceLevel::L1));
        t.record(entry(1, ServiceLevel::Memory));
        t.record(entry(2, ServiceLevel::L1));
        t.record(entry(3, ServiceLevel::Llc));
        assert!((t.service_share(Region::VertexStates, ServiceLevel::L1) - 0.5).abs() < 1e-12);
        assert_eq!(t.service_share(Region::NeighborArray, ServiceLevel::L1), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = AccessTrace::new(0);
    }
}
