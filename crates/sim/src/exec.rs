//! Host-parallel sharded execution of the machine model.
//!
//! The timing model never feeds back into engine behaviour: engines issue
//! typed accesses and discard the returned latencies, and the directory is
//! a pure function of the access stream. That makes the machine walk
//! *replayable*: the main thread records each access as a compact event
//! (plus the directory-derived invalidation candidates), per-core private
//! L1/L2 state is replayed on host worker threads, and a single sequential
//! reduction pass replays the shared LLC / DRAM / phase accounting in
//! global access order. Every statistic, energy input, and time-breakdown
//! value is byte-identical to the serial walk at any worker count, because
//! each sub-model sees exactly the serial event order:
//!
//! * **Record (main thread)** — computes addresses, counts `accesses` /
//!   per-region / per-op statistics, maintains the sharer directory inline
//!   (it depends only on the stream), queues invalidation candidates for
//!   victim cores, and appends one 16 B event per access to a per-core
//!   log. Logs are cut into fixed-size segments and shipped down the
//!   pipeline, so memory stays bounded and replay overlaps recording.
//! * **Replay (worker threads)** — each shard owns its cores' L1/L2 caches
//!   for the whole run and replays their merged access + invalidation
//!   streams in sequence order. Private hits are charged locally; every
//!   access emits exactly one boundary event — a *touch* for private hits
//!   (packed into 8 B: sequence number, word, line), or a *fill* carrying
//!   the private latency for L2 misses (24 B, rare).
//! * **Reduce (one thread)** — owns the LLC, the DRAM envelope, and the
//!   time breakdown. Boundary events are scattered into a dense
//!   per-segment scratch indexed by sequence number and replayed in
//!   order: touches OR word usage into a compact line → mask index
//!   mirroring LLC residency (touching never mutates replacement state,
//!   so the set-associative way scan is avoided on the hot path), and
//!   fills walk the LLC (and DRAM on miss) with the exact serial
//!   stamp/replacement state. Phase markers fold per-core timelines
//!   (main-side compute + replay-side hits + reduce-side fills) into the
//!   serial `max`-over-cores phase length.
//!
//! [`ExecMode::Sharded`]`(n)` spawns `n` auxiliary host threads next to
//! the recording thread: `n == 1` runs replay + reduce on one combined
//! worker, `n >= 2` dedicates one thread to reduction and `n - 1` to
//! replay shards. The shard → core grouping comes from a
//! [`ShardPlan`]; any plan (and any `n`) produces identical output, the
//! plan only balances wall-clock.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread::JoinHandle;

use tdgraph_graph::partition::ShardPlan;
use tdgraph_obs::{keys, Recorder, ShardedRecorder, Snapshot};

use crate::cache::SetAssocCache;
use crate::config::SimConfig;
use crate::memory::DramModel;
use crate::noc::Mesh;
use crate::stats::{Actor, LineUtilization, PhaseKind, TimeBreakdown};

/// How a machine executes: the classic single-thread walk, or the
/// record/replay pipeline over host worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Everything on the calling thread (the reference path).
    #[default]
    Serial,
    /// `Sharded(n)`: `n ≥ 1` auxiliary host worker threads next to the
    /// recording thread. `n == 1` replays and reduces on one combined
    /// worker; `n ≥ 2` uses `n - 1` replay shards plus a dedicated
    /// reduction thread. Output is byte-identical to [`ExecMode::Serial`]
    /// for every `n`.
    Sharded(usize),
}

impl ExecMode {
    /// Whether this mode runs the sharded pipeline.
    #[must_use]
    pub fn is_sharded(self) -> bool {
        matches!(self, ExecMode::Sharded(_))
    }

    /// Number of replay shards the mode uses (0 for serial).
    #[must_use]
    pub fn replay_shards(self) -> usize {
        match self {
            ExecMode::Serial => 0,
            ExecMode::Sharded(n) => n.max(2) - 1,
        }
    }

    /// Stable lowercase label (`serial`, `sharded4`) for reports and
    /// bench output.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            ExecMode::Serial => "serial".into(),
            ExecMode::Sharded(n) => format!("sharded{n}"),
        }
    }
}

/// Events per pipeline segment. Segments bound in-flight memory (8–24 B
/// per event per stage) and set the record → replay → reduce overlap
/// granularity.
const SEG: u64 = 1 << 18;

const WORD_MASK: u32 = 0xF;
const WRITE_BIT: u32 = 1 << 4;
const ACTOR_BIT: u32 = 1 << 5;
const REGION_SHIFT: u32 = 8;
const CORE_SHIFT: u32 = 16;

/// Bits of line address a packed touch can carry (64 TiB of simulated
/// address space). Checked once per machine at pipeline spawn.
const TOUCH_LINE_BITS: u32 = 42;
const TOUCH_LINE_MASK: u64 = (1 << TOUCH_LINE_BITS) - 1;
const TOUCH_WORD_SHIFT: u32 = TOUCH_LINE_BITS;
const TOUCH_REL_SHIFT: u32 = TOUCH_LINE_BITS + 4;
/// Scratch-slot tag discriminating a fill reference from a packed touch
/// (touches only populate the low `TOUCH_REL_SHIFT` bits).
const FILL_TAG: u64 = 1 << 63;

/// The largest line address a packed touch can represent; the pipeline
/// asserts the machine's address space fits at spawn.
pub(crate) const MAX_TOUCH_LINE: u64 = TOUCH_LINE_MASK;

/// A private-hit boundary touch packed into one word: segment-relative
/// sequence number, touched word, and line address. Touches are 90+% of
/// the boundary stream, so their footprint dominates the replay → reduce
/// traffic; packing them keeps the sequential reduction memory-bound
/// stages ~3x smaller than shipping full [`BoundaryEvent`]s.
fn pack_touch(rel: u32, word: u8, line: u64) -> u64 {
    (u64::from(rel) << TOUCH_REL_SHIFT) | (u64::from(word) << TOUCH_WORD_SHIFT) | line
}

fn pack_access(word: u8, write: bool, actor: Actor, region_idx: usize) -> u32 {
    u32::from(word)
        | if write { WRITE_BIT } else { 0 }
        | if matches!(actor, Actor::Accel) { ACTOR_BIT } else { 0 }
        | ((region_idx as u32) << REGION_SHIFT)
}

/// One recorded access of a core (16 B): segment-relative sequence number,
/// line address, and packed word/write/actor/region.
#[derive(Debug, Clone, Copy)]
struct AccessEvent {
    rel: u32,
    meta: u32,
    line: u64,
}

/// One invalidation candidate for a victim core: the writing access's
/// sequence number, the writer's core id, and the line.
#[derive(Debug, Clone, Copy)]
struct InvalEvent {
    rel: u32,
    writer: u32,
    line: u64,
}

/// One fill boundary event for the reduction pass (24 B): an access that
/// missed the private levels and must walk the shared LLC (and DRAM on a
/// further miss). Carries the private latency accumulated up to (and
/// including) the NoC round trip and LLC lookup.
#[derive(Debug, Clone, Copy)]
struct BoundaryEvent {
    rel: u32,
    base_lat: u32,
    meta: u32,
    line: u64,
}

/// Per-segment input for one replay shard: the shard's cores' event and
/// invalidation logs, parallel to its core list.
struct SegmentInput {
    events: Vec<Vec<AccessEvent>>,
    invals: Vec<Vec<InvalEvent>>,
}

/// Per-segment output of one replay shard.
struct SegmentOutput {
    /// Packed private-hit touches (scattered by the reducer by their
    /// embedded sequence number, so cross-core order is irrelevant).
    touches: Vec<u64>,
    /// LLC fill events, the rare heavyweight boundary crossings.
    fills: Vec<BoundaryEvent>,
    /// Private-hit timeline contributions: `(core, core_cycles,
    /// accel_cycles)`.
    contrib: Vec<(u32, u64, u64)>,
    l1_hits: u64,
    l2_hits: u64,
    noc_hop_cycles: u64,
    invalidations: u64,
    /// Telemetry: events replayed / fills emitted / invalidation probes.
    events_replayed: u64,
    fill_count: u64,
    inval_probes: u64,
}

/// A replay shard: persistent per-core private caches plus the pure
/// latency inputs needed to price hits and fills.
struct ShardReplayer {
    /// Global core ids owned by this shard.
    cores: Vec<usize>,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    mesh: Mesh,
    l1_lat: u64,
    l2_lat: u64,
    llc_lat: u64,
    mlp: u64,
}

impl ShardReplayer {
    fn replay_segment(&mut self, input: &SegmentInput) -> SegmentOutput {
        let mut out = SegmentOutput {
            touches: Vec::new(),
            fills: Vec::new(),
            contrib: Vec::with_capacity(self.cores.len()),
            l1_hits: 0,
            l2_hits: 0,
            noc_hop_cycles: 0,
            invalidations: 0,
            events_replayed: 0,
            fill_count: 0,
            inval_probes: 0,
        };
        let total: usize = input.events.iter().map(Vec::len).sum();
        out.touches.reserve(total);
        let ShardReplayer { cores, l1, l2, mesh, l1_lat, l2_lat, llc_lat, mlp } = self;
        for (i, &core) in cores.iter().enumerate() {
            let (l1, l2) = (&mut l1[i], &mut l2[i]);
            let (mut core_cyc, mut accel_cyc) = (0u64, 0u64);
            let events = &input.events[i];
            let invals = &input.invals[i];
            out.events_replayed += events.len() as u64;
            out.inval_probes += invals.len() as u64;
            let (mut e, mut v) = (0usize, 0usize);
            loop {
                let next_access =
                    e < events.len() && (v >= invals.len() || events[e].rel < invals[v].rel);
                if next_access {
                    let ev = events[e];
                    e += 1;
                    let word = (ev.meta & WORD_MASK) as u8;
                    let write = ev.meta & WRITE_BIT != 0;
                    let accel = ev.meta & ACTOR_BIT != 0;
                    let region =
                        crate::address::Region::ALL[((ev.meta >> REGION_SHIFT) & 0xFF) as usize];
                    let mut latency = *l1_lat;
                    if l1.access(ev.line, word, write, region).hit {
                        out.l1_hits += 1;
                    } else {
                        latency += *l2_lat;
                        if l2.access(ev.line, word, write, region).hit {
                            out.l2_hits += 1;
                        } else {
                            let noc = mesh.round_trip_cycles(core, ev.line);
                            out.noc_hop_cycles += noc;
                            latency += noc + *llc_lat;
                            out.fill_count += 1;
                            out.fills.push(BoundaryEvent {
                                rel: ev.rel,
                                base_lat: u32::try_from(latency).unwrap_or(u32::MAX),
                                meta: ev.meta | ((core as u32) << CORE_SHIFT),
                                line: ev.line,
                            });
                            continue;
                        }
                    }
                    // Private hit: charge the issuing timeline here and
                    // emit a packed touch so the LLC copy learns the word
                    // usage.
                    if accel {
                        accel_cyc += latency.div_ceil(*mlp);
                    } else {
                        core_cyc += latency;
                    }
                    out.touches.push(pack_touch(ev.rel, word, ev.line));
                } else if v < invals.len() {
                    let inv = invals[v];
                    v += 1;
                    // Mirror the serial walk: probe both levels (never
                    // short-circuit — both drops must happen), count one
                    // invalidation if either held the line.
                    let in_l1 = l1.invalidate(inv.line).is_some();
                    let in_l2 = l2.invalidate(inv.line).is_some();
                    if in_l1 || in_l2 {
                        out.invalidations += 1;
                        out.noc_hop_cycles += mesh.one_way_cycles(inv.writer as usize, core);
                    }
                } else {
                    break;
                }
            }
            out.contrib.push((core as u32, core_cyc, accel_cyc));
        }
        out
    }
}

/// Open-addressed `line → touched-word mask` index mirroring LLC
/// residency, with linear probing and backward-shift deletion.
///
/// In sharded mode this table — not the `touched` field inside the LLC's
/// own lines — is authoritative for word-usage masks: the reduction pass
/// applies one touch per private hit, and probing the set-associative
/// ways for each (a linear scan over full `Line` structs) dominates the
/// whole pipeline. A compact hash keyed by line address makes each touch
/// one or two host cache-line probes. Masks are synced back into the LLC
/// at finalization so the end-of-run flush sees the serial state.
struct TouchIndex {
    keys: Vec<u64>,
    masks: Vec<u16>,
    cap_mask: usize,
}

/// Sentinel for an empty slot; line addresses are bounded by
/// [`MAX_TOUCH_LINE`], so `u64::MAX` can never collide with a real key.
const EMPTY_KEY: u64 = u64::MAX;

impl TouchIndex {
    /// `resident_capacity` is the most lines the LLC can hold; the table
    /// keeps a ≤ 25% load factor so probe chains stay short.
    fn new(resident_capacity: usize) -> Self {
        let size = (resident_capacity * 4).next_power_of_two().max(16);
        Self { keys: vec![EMPTY_KEY; size], masks: vec![0; size], cap_mask: size - 1 }
    }

    #[inline]
    fn slot(&self, line: u64) -> usize {
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) ^ h) as usize & self.cap_mask
    }

    /// Registers a freshly inserted LLC line with its first touched word.
    #[inline]
    fn insert(&mut self, line: u64, mask: u16) {
        let mut i = self.slot(line);
        while self.keys[i] != EMPTY_KEY {
            debug_assert_ne!(self.keys[i], line, "line inserted while already resident");
            i = (i + 1) & self.cap_mask;
        }
        self.keys[i] = line;
        self.masks[i] = mask;
    }

    /// ORs `bits` into a resident line's mask; a no-op when the line is
    /// not resident (matching [`SetAssocCache::touch_word`]).
    #[inline]
    fn or_if_present(&mut self, line: u64, bits: u16) {
        let mut i = self.slot(line);
        loop {
            let k = self.keys[i];
            if k == line {
                self.masks[i] |= bits;
                return;
            }
            if k == EMPTY_KEY {
                return;
            }
            i = (i + 1) & self.cap_mask;
        }
    }

    /// Removes an evicted line, returning its accumulated mask. Uses
    /// backward-shift deletion so probe chains never need tombstones.
    #[inline]
    fn remove(&mut self, line: u64) -> u16 {
        let mut i = self.slot(line);
        while self.keys[i] != line {
            debug_assert_ne!(self.keys[i], EMPTY_KEY, "evicted line must be indexed");
            i = (i + 1) & self.cap_mask;
        }
        let out = self.masks[i];
        loop {
            self.keys[i] = EMPTY_KEY;
            let mut j = i;
            loop {
                j = (j + 1) & self.cap_mask;
                if self.keys[j] == EMPTY_KEY {
                    return out;
                }
                let home = self.slot(self.keys[j]);
                // The entry at j may back-shift into the hole at i only
                // if its home precedes i along the probe chain.
                if (j.wrapping_sub(home) & self.cap_mask) >= (j.wrapping_sub(i) & self.cap_mask) {
                    self.keys[i] = self.keys[j];
                    self.masks[i] = self.masks[j];
                    i = j;
                    break;
                }
            }
        }
    }

    /// The mask of a resident line (finalization sync).
    fn get(&self, line: u64) -> u16 {
        let mut i = self.slot(line);
        while self.keys[i] != line {
            debug_assert_ne!(self.keys[i], EMPTY_KEY, "resident line must be indexed");
            i = (i + 1) & self.cap_mask;
        }
        self.masks[i]
    }
}

/// The sequential reduction state: shared LLC, DRAM envelope, breakdown,
/// and the per-phase timeline folds.
struct Reducer {
    llc: SetAssocCache,
    dram: DramModel,
    breakdown: TimeBreakdown,
    llc_hits: u64,
    llc_misses: u64,
    l1_hits: u64,
    l2_hits: u64,
    noc_hop_cycles: u64,
    invalidations: u64,
    state_lines: LineUtilization,
    mlp: u64,
    /// Replay + reduce timeline contributions for the open phase.
    core_sum: Vec<u64>,
    accel_sum: Vec<u64>,
    /// Dense per-segment sequence scratch: slot `rel` holds either a
    /// packed touch (bit 63 clear) or `FILL_TAG | shard << 32 | index`
    /// referencing a shard's fill list.
    scratch: Vec<u64>,
    /// Authoritative touched-word masks for LLC-resident lines.
    touch_masks: TouchIndex,
    shard_counters: Vec<ShardCounters>,
}

/// Telemetry per replay shard, exported through a [`ShardedRecorder`].
#[derive(Debug, Clone, Copy, Default)]
struct ShardCounters {
    events_replayed: u64,
    fills: u64,
    inval_probes: u64,
    invalidations: u64,
}

impl Reducer {
    fn new(llc: SetAssocCache, dram: DramModel, cfg: &SimConfig, shards: usize) -> Self {
        let touch_masks = TouchIndex::new(llc.set_count() * llc.ways());
        Self {
            llc,
            dram,
            breakdown: TimeBreakdown::default(),
            llc_hits: 0,
            llc_misses: 0,
            l1_hits: 0,
            l2_hits: 0,
            noc_hop_cycles: 0,
            invalidations: 0,
            state_lines: LineUtilization::default(),
            mlp: cfg.accel_mlp,
            core_sum: vec![0; cfg.cores],
            accel_sum: vec![0; cfg.cores],
            scratch: Vec::new(),
            touch_masks,
            shard_counters: vec![ShardCounters::default(); shards],
        }
    }

    fn reduce_segment(&mut self, len: u32, outs: &[SegmentOutput]) {
        self.scratch.clear();
        self.scratch.resize(len as usize, 0);
        let mut filled = 0usize;
        for (shard, out) in outs.iter().enumerate() {
            self.l1_hits += out.l1_hits;
            self.l2_hits += out.l2_hits;
            self.noc_hop_cycles += out.noc_hop_cycles;
            self.invalidations += out.invalidations;
            let c = &mut self.shard_counters[shard];
            c.events_replayed += out.events_replayed;
            c.fills += out.fill_count;
            c.inval_probes += out.inval_probes;
            c.invalidations += out.invalidations;
            for &(core, cc, ac) in &out.contrib {
                self.core_sum[core as usize] += cc;
                self.accel_sum[core as usize] += ac;
            }
            for &t in &out.touches {
                self.scratch[(t >> TOUCH_REL_SHIFT) as usize] = t & (FILL_TAG - 1);
                filled += 1;
            }
            let tag = FILL_TAG | ((shard as u64) << 32);
            for (i, f) in out.fills.iter().enumerate() {
                self.scratch[f.rel as usize] = tag | i as u64;
                filled += 1;
            }
        }
        debug_assert_eq!(filled, len as usize, "every sequence slot must carry one event");
        for idx in 0..self.scratch.len() {
            let slot = self.scratch[idx];
            if slot & FILL_TAG == 0 {
                // A private-hit touch: propagate word usage to the LLC
                // copy (if resident). Never mutates replacement state, so
                // it only needs the O(1) mask index, not a way scan.
                let bits = 1u16 << ((slot >> TOUCH_WORD_SHIFT) & 0xF);
                self.touch_masks.or_if_present(slot & TOUCH_LINE_MASK, bits);
                continue;
            }
            let shard = ((slot >> 32) & 0x7FFF_FFFF) as usize;
            let ev = outs[shard].fills[(slot & 0xFFFF_FFFF) as usize];
            let word = (ev.meta & WORD_MASK) as u8;
            let write = ev.meta & WRITE_BIT != 0;
            let region = crate::address::Region::ALL[((ev.meta >> REGION_SHIFT) & 0xFF) as usize];
            let core = ((ev.meta >> CORE_SHIFT) & 0xFF) as usize;
            let mut latency = u64::from(ev.base_lat);
            let llc_out = self.llc.access(ev.line, word, write, region);
            if llc_out.hit {
                self.llc_hits += 1;
                self.touch_masks.or_if_present(ev.line, 1 << word);
            } else {
                self.llc_misses += 1;
                latency += self.dram.read_line();
            }
            if let Some(evicted) = llc_out.evicted {
                // The side index, not the line's internal counter, holds
                // the authoritative touched mask in sharded mode.
                let mask = self.touch_masks.remove(evicted.line);
                if evicted.region.is_state_region() {
                    self.state_lines.record(mask.count_ones());
                }
                if evicted.dirty {
                    self.dram.writeback_line();
                }
            }
            if !llc_out.hit {
                self.touch_masks.insert(ev.line, 1 << word);
            }
            if ev.meta & ACTOR_BIT != 0 {
                self.accel_sum[core] += latency.div_ceil(self.mlp);
            } else {
                self.core_sum[core] += latency;
            }
        }
    }

    fn end_phase(&mut self, kind: PhaseKind, main_core: &[u64], main_accel: &[u64]) -> u64 {
        let compute = (0..self.core_sum.len())
            .map(|c| {
                let core = main_core[c] + self.core_sum[c];
                let accel = main_accel[c] + self.accel_sum[c];
                core.max(accel)
            })
            .max()
            .unwrap_or(0);
        let cycles = self.dram.close_phase(compute);
        self.core_sum.iter_mut().for_each(|c| *c = 0);
        self.accel_sum.iter_mut().for_each(|c| *c = 0);
        self.breakdown.add(kind, cycles);
        cycles
    }

    fn into_final(mut self) -> FinalState {
        // Hand the LLC back with serial-exact touched masks so the
        // machine's end-of-run flush sees what a serial walk left behind.
        let masks = &self.touch_masks;
        self.llc.sync_touched(|line| masks.get(line));
        let telemetry = ShardedRecorder::new();
        for (i, c) in self.shard_counters.iter().enumerate() {
            let mut shard = telemetry.shard(i as u64);
            shard.counter(keys::SHARD_EVENTS_REPLAYED, c.events_replayed);
            shard.counter(keys::SHARD_BOUNDARY_FILLS, c.fills);
            shard.counter(keys::SHARD_INVAL_PROBES, c.inval_probes);
            shard.counter(keys::SHARD_INVALIDATIONS, c.invalidations);
            shard.finish();
        }
        FinalState {
            llc: self.llc,
            dram: self.dram,
            breakdown: self.breakdown,
            l1_hits: self.l1_hits,
            l2_hits: self.l2_hits,
            llc_hits: self.llc_hits,
            llc_misses: self.llc_misses,
            noc_hop_cycles: self.noc_hop_cycles,
            invalidations: self.invalidations,
            state_lines: self.state_lines,
            shard_telemetry: telemetry.merged(),
            shard_snapshots: telemetry.shard_snapshots(),
        }
    }
}

/// Everything the pipeline hands back to the machine at finalization.
pub(crate) struct FinalState {
    pub(crate) llc: SetAssocCache,
    pub(crate) dram: DramModel,
    pub(crate) breakdown: TimeBreakdown,
    pub(crate) l1_hits: u64,
    pub(crate) l2_hits: u64,
    pub(crate) llc_hits: u64,
    pub(crate) llc_misses: u64,
    pub(crate) noc_hop_cycles: u64,
    pub(crate) invalidations: u64,
    pub(crate) state_lines: LineUtilization,
    /// Merged per-shard replay telemetry (key-ordered, thread-count
    /// independent totals).
    pub(crate) shard_telemetry: Snapshot,
    /// The per-shard snapshots behind the merge, in shard order.
    pub(crate) shard_snapshots: Vec<(u64, Snapshot)>,
}

enum ReduceMsg {
    SegMeta { seg: u64, len: u32 },
    SegOut { seg: u64, shard: usize, out: SegmentOutput },
    EndPhase { seg_end: u64, kind: PhaseKind, main_core: Vec<u64>, main_accel: Vec<u64> },
    Drain { reply: mpsc::Sender<u64> },
}

enum CombinedMsg {
    Segment { len: u32, input: SegmentInput },
    EndPhase { kind: PhaseKind, main_core: Vec<u64>, main_accel: Vec<u64> },
    Drain { reply: mpsc::Sender<u64> },
}

enum Senders {
    Split { replayers: Vec<mpsc::SyncSender<SegmentInput>>, reducer: mpsc::SyncSender<ReduceMsg> },
    Combined { tx: mpsc::SyncSender<CombinedMsg> },
}

/// The live pipeline: record-side state plus the worker threads.
pub(crate) struct Pipeline {
    /// Global sequence number of the next access.
    seq: u64,
    seg_base: u64,
    seg_index: u64,
    /// Per-core event logs for the open segment.
    events: Vec<Vec<AccessEvent>>,
    invals: Vec<Vec<InvalEvent>>,
    /// Shard → cores (replay grouping actually spawned).
    shard_cores: Vec<Vec<usize>>,
    senders: Option<Senders>,
    replay_handles: Vec<JoinHandle<()>>,
    final_handle: Option<JoinHandle<FinalState>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("seq", &self.seq)
            .field("shards", &self.shard_cores.len())
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Spawns the worker topology for `workers` auxiliary threads, taking
    /// ownership of the machine's caches and DRAM model.
    pub(crate) fn spawn(
        cfg: &SimConfig,
        plan: &ShardPlan,
        workers: usize,
        l1: Vec<SetAssocCache>,
        l2: Vec<SetAssocCache>,
        llc: SetAssocCache,
        dram: DramModel,
    ) -> Self {
        assert!(workers >= 1, "sharded execution needs at least one worker thread");
        assert_eq!(plan.cores(), cfg.cores, "shard plan must cover every simulated core");
        let replay_shards = if workers == 1 { 1 } else { workers - 1 };
        // Regroup the plan onto the spawned shard count (plans with a
        // different shard count redistribute round-robin, preserving the
        // plan's grouping where possible).
        let mut shard_cores: Vec<Vec<usize>> = vec![Vec::new(); replay_shards];
        for s in 0..plan.shards() {
            shard_cores[s % replay_shards].extend_from_slice(plan.cores_for(s));
        }
        for cores in &mut shard_cores {
            cores.sort_unstable();
        }
        let mut l1_by_core: Vec<Option<SetAssocCache>> = l1.into_iter().map(Some).collect();
        let mut l2_by_core: Vec<Option<SetAssocCache>> = l2.into_iter().map(Some).collect();
        let mesh = Mesh::new(cfg.mesh_dim, cfg.hop_cycles);
        let make_replayer = |cores: &Vec<usize>,
                             l1s: &mut Vec<Option<SetAssocCache>>,
                             l2s: &mut Vec<Option<SetAssocCache>>| {
            ShardReplayer {
                cores: cores.clone(),
                l1: cores.iter().map(|&c| l1s[c].take().expect("core owned once")).collect(),
                l2: cores.iter().map(|&c| l2s[c].take().expect("core owned once")).collect(),
                mesh,
                l1_lat: cfg.l1d.latency,
                l2_lat: cfg.l2.latency,
                llc_lat: cfg.llc.latency,
                mlp: cfg.accel_mlp,
            }
        };

        let reducer = Reducer::new(llc, dram, cfg, replay_shards);
        let mut replay_handles = Vec::new();
        let senders;
        let final_handle;
        if workers == 1 {
            let mut shard = make_replayer(&shard_cores[0], &mut l1_by_core, &mut l2_by_core);
            let (tx, rx) = mpsc::sync_channel::<CombinedMsg>(8);
            let handle = std::thread::Builder::new()
                .name("tdgraph-shard".into())
                .spawn(move || run_combined(rx, &mut shard, reducer))
                .expect("spawn combined shard worker");
            senders = Senders::Combined { tx };
            final_handle = Some(handle);
        } else {
            let (red_tx, red_rx) = mpsc::sync_channel::<ReduceMsg>(replay_shards * 4 + 8);
            let mut replayer_txs = Vec::with_capacity(replay_shards);
            for (s, cores) in shard_cores.iter().enumerate() {
                let mut shard = make_replayer(cores, &mut l1_by_core, &mut l2_by_core);
                let (tx, rx) = mpsc::sync_channel::<SegmentInput>(4);
                let out_tx = red_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("tdgraph-replay{s}"))
                    .spawn(move || {
                        let mut seg = 0u64;
                        while let Ok(input) = rx.recv() {
                            let out = shard.replay_segment(&input);
                            if out_tx.send(ReduceMsg::SegOut { seg, shard: s, out }).is_err() {
                                break;
                            }
                            seg += 1;
                        }
                    })
                    .expect("spawn replay worker");
                replayer_txs.push(tx);
                replay_handles.push(handle);
            }
            let shards = replay_shards;
            let handle = std::thread::Builder::new()
                .name("tdgraph-reduce".into())
                .spawn(move || run_reducer(red_rx, reducer, shards))
                .expect("spawn reduce worker");
            senders = Senders::Split { replayers: replayer_txs, reducer: red_tx };
            final_handle = Some(handle);
        }

        Self {
            seq: 0,
            seg_base: 0,
            seg_index: 0,
            events: (0..cfg.cores).map(|_| Vec::new()).collect(),
            invals: (0..cfg.cores).map(|_| Vec::new()).collect(),
            shard_cores,
            senders: Some(senders),
            replay_handles,
            final_handle: Some(handle_opt_unwrap(final_handle)),
        }
    }

    /// Queues an invalidation candidate for `victim` at the *next* access's
    /// sequence number (the write being recorded).
    pub(crate) fn push_inval(&mut self, victim: usize, writer: usize, line: u64) {
        let rel = (self.seq - self.seg_base) as u32;
        self.invals[victim].push(InvalEvent { rel, writer: writer as u32, line });
    }

    /// Records one access and advances the sequence number, cutting a
    /// segment when full.
    pub(crate) fn record(
        &mut self,
        core: usize,
        actor: Actor,
        region: crate::address::Region,
        line: u64,
        word: u8,
        write: bool,
    ) {
        let rel = (self.seq - self.seg_base) as u32;
        self.events[core].push(AccessEvent {
            rel,
            meta: pack_access(word, write, actor, region.index()),
            line,
        });
        self.seq += 1;
        if self.seq - self.seg_base == SEG {
            self.cut_segment();
        }
    }

    fn cut_segment(&mut self) {
        let len = (self.seq - self.seg_base) as u32;
        if len == 0 {
            return;
        }
        let seg = self.seg_index;
        let mut inputs: Vec<SegmentInput> = self
            .shard_cores
            .iter()
            .map(|cores| SegmentInput {
                events: cores.iter().map(|&c| std::mem::take(&mut self.events[c])).collect(),
                invals: cores.iter().map(|&c| std::mem::take(&mut self.invals[c])).collect(),
            })
            .collect();
        match self.senders.as_ref().expect("pipeline finalized") {
            Senders::Split { replayers, reducer } => {
                reducer.send(ReduceMsg::SegMeta { seg, len }).expect("reduce worker alive");
                for (tx, input) in replayers.iter().zip(inputs.drain(..)) {
                    tx.send(input).expect("replay worker alive");
                }
            }
            Senders::Combined { tx } => {
                let input = inputs.pop().expect("single shard");
                let _ = seg;
                tx.send(CombinedMsg::Segment { len, input }).expect("shard worker alive");
            }
        }
        self.seg_base = self.seq;
        self.seg_index += 1;
    }

    /// Ships the open partial segment and a phase marker carrying the
    /// main-side timeline snapshot.
    pub(crate) fn end_phase(&mut self, kind: PhaseKind, main_core: Vec<u64>, main_accel: Vec<u64>) {
        self.cut_segment();
        let seg_end = self.seg_index;
        match self.senders.as_ref().expect("pipeline finalized") {
            Senders::Split { reducer, .. } => reducer
                .send(ReduceMsg::EndPhase { seg_end, kind, main_core, main_accel })
                .expect("reduce worker alive"),
            Senders::Combined { tx } => tx
                .send(CombinedMsg::EndPhase { kind, main_core, main_accel })
                .expect("shard worker alive"),
        }
    }

    /// Blocks until the most recently marked phase is reduced; returns its
    /// exact cycle count (identical to the serial `end_phase` return).
    pub(crate) fn drain_last_phase(&mut self) -> u64 {
        let (reply_tx, reply_rx) = mpsc::channel();
        match self.senders.as_ref().expect("pipeline finalized") {
            Senders::Split { reducer, .. } => {
                reducer.send(ReduceMsg::Drain { reply: reply_tx }).expect("reduce worker alive");
            }
            Senders::Combined { tx } => {
                tx.send(CombinedMsg::Drain { reply: reply_tx }).expect("shard worker alive");
            }
        }
        reply_rx.recv().expect("reduce worker answers drains")
    }

    /// Ships any tail events, closes the channels, joins every worker, and
    /// returns the merged machine state.
    pub(crate) fn finalize(mut self) -> FinalState {
        self.cut_segment();
        drop(self.senders.take());
        for handle in self.replay_handles.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        let handle = self.final_handle.take().expect("pipeline finalized once");
        match handle.join() {
            Ok(state) => state,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

fn handle_opt_unwrap(h: Option<JoinHandle<FinalState>>) -> JoinHandle<FinalState> {
    match h {
        Some(h) => h,
        None => unreachable!("final handle always set"),
    }
}

fn run_combined(
    rx: mpsc::Receiver<CombinedMsg>,
    shard: &mut ShardReplayer,
    mut reducer: Reducer,
) -> FinalState {
    let mut phase_cycles: Vec<u64> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            CombinedMsg::Segment { len, input } => {
                let out = shard.replay_segment(&input);
                reducer.reduce_segment(len, &[out]);
            }
            CombinedMsg::EndPhase { kind, main_core, main_accel } => {
                phase_cycles.push(reducer.end_phase(kind, &main_core, &main_accel));
            }
            CombinedMsg::Drain { reply } => {
                let cycles = phase_cycles.last().copied().unwrap_or(0);
                let _ = reply.send(cycles);
            }
        }
    }
    reducer.into_final()
}

fn run_reducer(rx: mpsc::Receiver<ReduceMsg>, mut reducer: Reducer, shards: usize) -> FinalState {
    let mut next_seg = 0u64;
    let mut metas: BTreeMap<u64, u32> = BTreeMap::new();
    let mut outs: BTreeMap<u64, Vec<Option<SegmentOutput>>> = BTreeMap::new();
    let mut marks: VecDeque<(u64, PhaseKind, Vec<u64>, Vec<u64>)> = VecDeque::new();
    let mut drains: VecDeque<(u64, mpsc::Sender<u64>)> = VecDeque::new();
    let mut phases_announced = 0u64;
    let mut phase_cycles: Vec<u64> = Vec::new();

    let progress = |next_seg: &mut u64,
                    metas: &mut BTreeMap<u64, u32>,
                    outs: &mut BTreeMap<u64, Vec<Option<SegmentOutput>>>,
                    marks: &mut VecDeque<(u64, PhaseKind, Vec<u64>, Vec<u64>)>,
                    drains: &mut VecDeque<(u64, mpsc::Sender<u64>)>,
                    phase_cycles: &mut Vec<u64>,
                    reducer: &mut Reducer| {
        loop {
            // Close every phase whose segments are all reduced.
            while let Some(&(seg_end, _, _, _)) = marks.front() {
                if seg_end > *next_seg {
                    break;
                }
                let (_, kind, mc, ma) = match marks.pop_front() {
                    Some(m) => m,
                    None => break,
                };
                phase_cycles.push(reducer.end_phase(kind, &mc, &ma));
            }
            // Answer drains whose target phase is closed.
            while let Some(&(target, _)) = drains.front() {
                if target > phase_cycles.len() as u64 {
                    break;
                }
                if let Some((target, reply)) = drains.pop_front() {
                    let cycles = if target == 0 { 0 } else { phase_cycles[target as usize - 1] };
                    let _ = reply.send(cycles);
                }
            }
            // Reduce the next segment if complete.
            let ready = metas.get(next_seg).copied().is_some()
                && outs.get(next_seg).is_some_and(|v| v.iter().all(Option::is_some));
            if !ready {
                break;
            }
            let len = match metas.remove(next_seg) {
                Some(len) => len,
                None => break,
            };
            let segouts: Vec<SegmentOutput> =
                outs.remove(next_seg).unwrap_or_default().into_iter().flatten().collect();
            reducer.reduce_segment(len, &segouts);
            *next_seg += 1;
        }
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            ReduceMsg::SegMeta { seg, len } => {
                metas.insert(seg, len);
            }
            ReduceMsg::SegOut { seg, shard, out } => {
                // Slot by shard index: per-shard telemetry attribution must
                // not depend on cross-thread arrival order.
                let slots = outs.entry(seg).or_insert_with(|| {
                    let mut v = Vec::with_capacity(shards);
                    v.resize_with(shards, || None);
                    v
                });
                slots[shard] = Some(out);
            }
            ReduceMsg::EndPhase { seg_end, kind, main_core, main_accel } => {
                phases_announced += 1;
                marks.push_back((seg_end, kind, main_core, main_accel));
            }
            ReduceMsg::Drain { reply } => {
                drains.push_back((phases_announced, reply));
            }
        }
        progress(
            &mut next_seg,
            &mut metas,
            &mut outs,
            &mut marks,
            &mut drains,
            &mut phase_cycles,
            &mut reducer,
        );
    }
    progress(
        &mut next_seg,
        &mut metas,
        &mut outs,
        &mut marks,
        &mut drains,
        &mut phase_cycles,
        &mut reducer,
    );
    debug_assert!(metas.is_empty() && outs.is_empty() && marks.is_empty());
    reducer.into_final()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{AddressSpace, Region};
    use crate::machine::Machine;
    use crate::stats::Op;

    /// Deterministic xorshift for synthetic access streams.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn drive(m: &mut Machine, seed: u64, phases: usize, accesses_per_phase: usize) -> Vec<u64> {
        let mut rng = Rng(seed | 1);
        let cores = m.cores();
        let mut phase_lens = Vec::new();
        for p in 0..phases {
            for _ in 0..accesses_per_phase {
                let r = rng.next();
                let core = (r % cores as u64) as usize;
                let actor = if r & 0x10 != 0 { Actor::Accel } else { Actor::Core };
                let region = match (r >> 8) % 4 {
                    0 => Region::VertexStates,
                    1 => Region::NeighborArray,
                    2 => Region::OffsetArray,
                    _ => Region::ActiveVertices,
                };
                let index = (r >> 16) % 4096;
                let write = (r >> 5) & 0x3 == 0;
                m.access(core, actor, region, index, write);
                if r & 0x7 == 0 {
                    m.compute(core, Actor::Core, Op::EdgeProcess, 2);
                }
            }
            let kind = if p % 2 == 0 { PhaseKind::Propagation } else { PhaseKind::Other };
            phase_lens.push(m.end_phase_synced(kind));
        }
        m.finish();
        phase_lens
    }

    fn machines_agree(exec: ExecMode) {
        let layout = AddressSpace::layout(4096, 16384, 64);
        let cfg = SimConfig::small_test();
        let mut serial = Machine::new(cfg.clone(), layout.clone());
        let serial_phases = drive(&mut serial, 0xABCD, 5, 4000);

        let mut sharded = Machine::with_exec(
            cfg,
            layout,
            exec,
            &ShardPlan::uniform(serial.cores(), exec.replay_shards()),
        );
        let sharded_phases = drive(&mut sharded, 0xABCD, 5, 4000);

        assert_eq!(serial_phases, sharded_phases, "{exec:?} phase cycles diverge");
        assert_eq!(serial.stats(), sharded.stats(), "{exec:?} stats diverge");
        assert_eq!(serial.breakdown(), sharded.breakdown(), "{exec:?} breakdown diverges");
        assert_eq!(serial.total_cycles(), sharded.total_cycles());
        assert_eq!(serial.dram().total_bytes(), sharded.dram().total_bytes());
        assert_eq!(serial.dram().total_reads(), sharded.dram().total_reads());
        assert_eq!(serial.dram().total_writebacks(), sharded.dram().total_writebacks());
    }

    #[test]
    fn sharded_one_matches_serial() {
        machines_agree(ExecMode::Sharded(1));
    }

    #[test]
    fn sharded_two_matches_serial() {
        machines_agree(ExecMode::Sharded(2));
    }

    #[test]
    fn sharded_four_matches_serial() {
        machines_agree(ExecMode::Sharded(4));
    }

    #[test]
    fn sharded_handles_empty_phases_and_tail_accesses() {
        let layout = AddressSpace::layout(1024, 4096, 16);
        let cfg = SimConfig::small_test();
        let mut serial = Machine::new(cfg.clone(), layout.clone());
        let plan = ShardPlan::uniform(cfg.cores, ExecMode::Sharded(3).replay_shards());
        let mut sharded = Machine::with_exec(cfg, layout, ExecMode::Sharded(3), &plan);
        for m in [&mut serial, &mut sharded] {
            // Empty phase first.
            let empty = m.end_phase_synced(PhaseKind::Other);
            assert_eq!(empty, 0);
            m.access(0, Actor::Core, Region::VertexStates, 0, true);
            m.access(1, Actor::Core, Region::VertexStates, 0, true);
            let p = m.end_phase_synced(PhaseKind::Propagation);
            assert!(p > 0);
            // Tail accesses never folded into a phase still count in stats.
            m.access(2, Actor::Core, Region::VertexStates, 0, false);
            m.finish();
        }
        assert_eq!(serial.stats(), sharded.stats());
        assert_eq!(serial.stats().invalidations, 1);
    }

    #[test]
    fn touch_index_matches_a_reference_map_under_churn() {
        use std::collections::HashMap;
        let mut t = TouchIndex::new(8); // 32 slots — forces probe chains
        let mut reference: HashMap<u64, u16> = HashMap::new();
        let mut rng = Rng(0x7AB1E);
        for _ in 0..20_000 {
            let r = rng.next();
            let line = (r >> 8) % 48; // dense key space → heavy collisions
            let bit = 1u16 << (r % 16);
            match r % 5 {
                0 | 1 => {
                    // Touch: OR iff resident.
                    t.or_if_present(line, bit);
                    if let Some(m) = reference.get_mut(&line) {
                        *m |= bit;
                    }
                }
                2 | 3 => {
                    // Fill: evict-if-resident then insert fresh.
                    if let Some(m) = reference.remove(&line) {
                        assert_eq!(t.remove(line), m);
                    }
                    if reference.len() < 24 {
                        t.insert(line, bit);
                        reference.insert(line, bit);
                    }
                }
                _ => {
                    if let Some(m) = reference.remove(&line) {
                        assert_eq!(t.remove(line), m);
                    }
                }
            }
        }
        for (&line, &m) in &reference {
            assert_eq!(t.get(line), m);
        }
    }

    #[test]
    fn exec_mode_labels_and_shards() {
        assert_eq!(ExecMode::Serial.label(), "serial");
        assert_eq!(ExecMode::Sharded(4).label(), "sharded4");
        assert_eq!(ExecMode::Serial.replay_shards(), 0);
        assert_eq!(ExecMode::Sharded(1).replay_shards(), 1);
        assert_eq!(ExecMode::Sharded(2).replay_shards(), 1);
        assert_eq!(ExecMode::Sharded(4).replay_shards(), 3);
        assert!(ExecMode::Sharded(1).is_sharded());
        assert!(!ExecMode::Serial.is_sharded());
    }

    #[test]
    fn shard_telemetry_totals_are_thread_count_independent() {
        let layout = AddressSpace::layout(4096, 16384, 64);
        let cfg = SimConfig::small_test();
        let mut snaps = Vec::new();
        for exec in [ExecMode::Sharded(1), ExecMode::Sharded(2), ExecMode::Sharded(4)] {
            let plan = ShardPlan::uniform(cfg.cores, exec.replay_shards());
            let mut m = Machine::with_exec(cfg.clone(), layout.clone(), exec, &plan);
            drive(&mut m, 0x5EED, 3, 2000);
            snaps.push(m.shard_telemetry().expect("sharded run has telemetry").clone());
        }
        assert_eq!(snaps[0], snaps[1]);
        assert_eq!(snaps[1], snaps[2]);
    }
}
