//! Host-parallel sharded execution of the machine model.
//!
//! The timing model never feeds back into engine behaviour: engines issue
//! typed accesses and discard the returned latencies, and the directory is
//! a pure function of the access stream. That makes the machine walk
//! *replayable*: the main thread records each access as a compact event
//! (plus the directory-derived invalidation candidates), per-core private
//! L1/L2 state is replayed on host worker threads, and a single sequential
//! reduction pass replays the shared LLC / DRAM / phase accounting in
//! global access order. Every statistic, energy input, and time-breakdown
//! value is byte-identical to the serial walk at any worker count, because
//! each sub-model sees exactly the serial event order:
//!
//! * **Record (main thread)** — computes addresses, counts `accesses` /
//!   per-region / per-op statistics, maintains the sharer directory inline
//!   (it depends only on the stream), queues invalidation candidates for
//!   victim cores, and appends one 16 B event per access to a per-core
//!   log. Logs are cut into fixed-size segments and shipped down the
//!   pipeline, so memory stays bounded and replay overlaps recording.
//! * **Replay (worker threads)** — each shard owns its cores' L1/L2 caches
//!   for the whole run and replays their merged access + invalidation
//!   streams in sequence order. Private hits are charged locally; every
//!   access emits exactly one boundary event — a *touch* for private hits
//!   (packed into 8 B: sequence number, word, line), or a *fill* carrying
//!   the private latency for L2 misses (24 B, rare).
//! * **Reduce (one thread)** — owns the LLC, the DRAM envelope, and the
//!   time breakdown. Boundary events are scattered into a dense
//!   per-segment scratch indexed by sequence number and replayed in
//!   order: touches OR word usage into a compact line → mask index
//!   mirroring LLC residency (touching never mutates replacement state,
//!   so the set-associative way scan is avoided on the hot path), and
//!   fills walk the LLC (and DRAM on miss) with the exact serial
//!   stamp/replacement state. Phase markers fold per-core timelines
//!   (main-side compute + replay-side hits + reduce-side fills) into the
//!   serial `max`-over-cores phase length.
//!
//! [`ExecConfig::serial()`]`.shards(n)` spawns `n` auxiliary host threads
//! next to the recording thread: `n == 1` runs replay + reduce on one
//! combined worker, `n >= 2` dedicates one thread to reduction and
//! `n - 1` to replay shards. The shard → core grouping comes from a
//! [`ShardPlan`]; any plan (and any `n`) produces identical output, the
//! plan only balances wall-clock.
//!
//! # Reducer lanes
//!
//! `.reduce_lanes(k)` with `k >= 2` breaks the serial-reduce floor:
//! LLC/`TouchIndex` state is partitioned by cache-line key range into `k`
//! independent lanes, each owning the whole DRRIP duel banks
//! `b` with `b % k == lane` (see [`lane_of_line`]). Replay shards split
//! their boundary streams per lane, a coordinator thread fans segments
//! out, and each lane replays *its* events in serial arrival order
//! against a lane-local LLC image that only ever sees the lane's sets.
//! Because an event for line `L` can only read or write (a) `L`'s set,
//! (b) that set's duel bank, and (c) `L`'s touch-mask entry — all owned
//! by exactly one lane — and everything cross-lane (DRAM traffic,
//! timeline sums, hit/miss counts) is an order-independent sum folded at
//! phase boundaries, the merged result stays byte-identical to the
//! serial walk for every lane count.
//!
//! # Boundary-event encoding
//!
//! `.event_encoding(EventEncoding::RunLength)` collapses consecutive
//! touches to the same line (adjacent global sequence numbers, one core)
//! into one 16 B masked [`TouchRun`]; fills stay 24 B. Runs never span a
//! core's segment-log boundary, so encoded byte counts are
//! thread-count-independent telemetry.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread::JoinHandle;

use tdgraph_graph::partition::ShardPlan;
use tdgraph_obs::{keys, Recorder, ShardedRecorder, Snapshot};

use crate::cache::SetAssocCache;
use crate::config::SimConfig;
use crate::memory::DramModel;
use crate::noc::Mesh;
use crate::stats::{Actor, LineUtilization, PhaseKind, TimeBreakdown};

/// How a machine executes: the classic single-thread walk, or the
/// record/replay pipeline over host worker threads.
#[deprecated(note = "superseded by `ExecConfig`: replace `ExecMode::Serial` with \
            `ExecConfig::serial()` and `ExecMode::Sharded(n)` with \
            `ExecConfig::serial().shards(n)` (or convert via `From`)")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Everything on the calling thread (the reference path).
    Serial,
    /// `Sharded(n)`: `n ≥ 1` auxiliary host worker threads next to the
    /// recording thread. `n == 1` replays and reduces on one combined
    /// worker; `n ≥ 2` uses `n - 1` replay shards plus a dedicated
    /// reduction thread. Output is byte-identical to serial for every
    /// `n`.
    Sharded(usize),
}

// Manual impl: deriving `Default` on a deprecated type trips the
// deprecation lint inside the derive expansion.
#[allow(deprecated, clippy::derivable_impls)]
impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Serial
    }
}

#[allow(deprecated)]
impl ExecMode {
    /// Whether this mode runs the sharded pipeline.
    #[must_use]
    pub fn is_sharded(self) -> bool {
        matches!(self, ExecMode::Sharded(_))
    }

    /// Number of replay shards the mode uses (0 for serial).
    #[must_use]
    pub fn replay_shards(self) -> usize {
        match self {
            ExecMode::Serial => 0,
            ExecMode::Sharded(n) => n.max(2) - 1,
        }
    }

    /// Stable lowercase label (`serial`, `sharded4`) for reports and
    /// bench output.
    #[must_use]
    pub fn label(self) -> String {
        ExecConfig::from(self).label()
    }
}

/// Wire encoding for the 8 B packed-touch boundary stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EventEncoding {
    /// One 8 B packed word per private-hit touch (the PR-5 format).
    #[default]
    Packed,
    /// Run-length: consecutive touches to the same line (adjacent global
    /// sequence numbers, necessarily one core) collapse into a single
    /// 16 B [`TouchRun`] carrying the OR of their word masks. Fills stay
    /// 24 B. Wins on streaming scans that walk a line word by word.
    RunLength,
}

impl EventEncoding {
    /// Stable lowercase label (`packed`, `rle`) for reports and bench
    /// output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventEncoding::Packed => "packed",
            EventEncoding::RunLength => "rle",
        }
    }
}

/// Hard cap on [`ExecConfig::reduce_lanes`]: lanes partition whole DRRIP
/// duel banks, so more lanes than banks could never get work.
pub const MAX_REDUCE_LANES: usize = crate::cache::DUEL_BANKS;

/// How a machine executes, as one value: replay-shard worker count,
/// reducer lane count, and boundary-event encoding.
///
/// The default (`ExecConfig::serial()`) is the single-thread reference
/// walk. `.shards(n)` with `n >= 1` switches to the record/replay
/// pipeline with `n` auxiliary threads dedicated to replay + (single
/// lane) reduce; `.shards(0)` collapses back to serial. `.reduce_lanes(k)`
/// with `k >= 2` additionally spawns a coordinator plus `k` lane threads
/// that partition the shared-state merge by cache-line key range. Every
/// combination produces byte-identical output; the knobs only trade
/// wall-clock and memory.
///
/// ```
/// use tdgraph_sim::{EventEncoding, ExecConfig};
/// let cfg = ExecConfig::serial()
///     .shards(4)
///     .reduce_lanes(2)
///     .event_encoding(EventEncoding::RunLength);
/// assert_eq!(cfg.label(), "sharded4x2-rle");
/// assert_eq!(ExecConfig::default(), ExecConfig::serial());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecConfig {
    workers: usize,
    lanes: usize,
    encoding: EventEncoding,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::serial()
    }
}

impl ExecConfig {
    /// The single-thread reference walk.
    #[must_use]
    pub const fn serial() -> Self {
        Self { workers: 0, lanes: 1, encoding: EventEncoding::Packed }
    }

    /// Sets the auxiliary replay worker count; `0` means serial.
    #[must_use]
    pub const fn shards(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the reducer lane count (`1..=`[`MAX_REDUCE_LANES`]).
    /// Validated at machine construction / [`ExecConfig::validate`].
    #[must_use]
    pub const fn reduce_lanes(mut self, k: usize) -> Self {
        self.lanes = k;
        self
    }

    /// Selects the boundary-event encoding.
    #[must_use]
    pub const fn event_encoding(mut self, encoding: EventEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Whether this config runs the sharded pipeline.
    #[must_use]
    pub fn is_sharded(self) -> bool {
        self.workers > 0
    }

    /// Auxiliary replay/reduce worker threads requested (`0` = serial).
    #[must_use]
    pub fn workers(self) -> usize {
        self.workers
    }

    /// Reducer lane count (`1` = the classic single sequential reducer).
    #[must_use]
    pub fn lanes(self) -> usize {
        self.lanes
    }

    /// The boundary-event encoding.
    #[must_use]
    pub fn encoding(self) -> EventEncoding {
        self.encoding
    }

    /// Number of replay shards the config spawns (0 for serial).
    #[must_use]
    pub fn replay_shards(self) -> usize {
        match self.workers {
            0 => 0,
            n => n.max(2) - 1,
        }
    }

    /// Checks the lane count is in `1..=`[`MAX_REDUCE_LANES`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the offending knob.
    pub fn validate(self) -> Result<(), String> {
        if self.lanes == 0 || self.lanes > MAX_REDUCE_LANES {
            return Err(format!(
                "reduce_lanes must be in 1..={MAX_REDUCE_LANES}, got {}",
                self.lanes
            ));
        }
        Ok(())
    }

    /// Stable lowercase label for reports and bench output: `serial`,
    /// `sharded4`, `sharded4x2`, with an `-rle` suffix under
    /// [`EventEncoding::RunLength`].
    #[must_use]
    pub fn label(self) -> String {
        if !self.is_sharded() {
            return "serial".into();
        }
        let mut s = format!("sharded{}", self.workers);
        if self.lanes > 1 {
            s.push_str(&format!("x{}", self.lanes));
        }
        if matches!(self.encoding, EventEncoding::RunLength) {
            s.push_str("-rle");
        }
        s
    }
}

#[allow(deprecated)]
impl From<ExecMode> for ExecConfig {
    /// `Serial` maps to [`ExecConfig::serial`]; `Sharded(n)` to
    /// `.shards(n)` (so the previously rejected `Sharded(0)` now
    /// collapses to serial).
    fn from(mode: ExecMode) -> Self {
        match mode {
            ExecMode::Serial => ExecConfig::serial(),
            ExecMode::Sharded(n) => ExecConfig::serial().shards(n),
        }
    }
}

/// Events per pipeline segment. Segments bound in-flight memory (8–24 B
/// per event per stage) and set the record → replay → reduce overlap
/// granularity.
const SEG: u64 = 1 << 18;

const WORD_MASK: u32 = 0xF;
const WRITE_BIT: u32 = 1 << 4;
const ACTOR_BIT: u32 = 1 << 5;
const REGION_SHIFT: u32 = 8;
const CORE_SHIFT: u32 = 16;

/// Bits of line address a packed touch can carry (64 TiB of simulated
/// address space). Checked once per machine at pipeline spawn.
const TOUCH_LINE_BITS: u32 = 42;
const TOUCH_LINE_MASK: u64 = (1 << TOUCH_LINE_BITS) - 1;
const TOUCH_WORD_SHIFT: u32 = TOUCH_LINE_BITS;
const TOUCH_REL_SHIFT: u32 = TOUCH_LINE_BITS + 4;
/// Scratch-slot tag discriminating a fill reference from a touch slot
/// (touch slots only populate bits below [`RUN_TAG`]).
const FILL_TAG: u64 = 1 << 63;
/// Scratch-slot tag for the head of a [`TouchRun`]: bit 62 set, run mask
/// in bits 42..58, line in bits 0..42. Plain touch slots are masked to
/// [`TOUCH_PAYLOAD_MASK`] so bits 62/63 stay free for tags.
const RUN_TAG: u64 = 1 << 62;
/// The word + line payload of a packed touch (bits 0..46); the sequence
/// number above it is consumed by the scatter and must not leak into the
/// slot, where bit 62 discriminates runs.
const TOUCH_PAYLOAD_MASK: u64 = (1 << TOUCH_REL_SHIFT) - 1;
/// Scratch sentinel for a sequence slot carrying no event for this lane
/// (or covered by a preceding run). As a fill reference it would name
/// shard `0x3FFF_FFFF`, index `0xFFFF_FFFF` — unreachable.
const EMPTY_SLOT: u64 = u64::MAX;

/// The reducer lane owning `line`: line → LLC set → DRRIP duel bank →
/// bank % lanes. Every bank (and therefore every set and every line) is
/// wholly owned by exactly one lane for any `lanes` in
/// `1..=`[`MAX_REDUCE_LANES`], which is what makes lane-local LLC images
/// byte-exact: no two lanes ever read or write the same set, duel bank,
/// or touch-mask entry.
pub(crate) fn lane_of_line(line: u64, llc_sets: usize, lanes: usize) -> usize {
    ((line % llc_sets as u64) as usize % crate::cache::DUEL_BANKS) % lanes
}

/// One run-length-encoded group of consecutive touches to the same line:
/// global sequence numbers `rel..rel + len`, all from one core, with the
/// OR of their word masks. Exactly 16 B on the wire (vs `8 * len` raw).
///
/// Because the member sequence numbers are *globally* consecutive, no
/// other event — on any line, from any core — lands between them, so LLC
/// residency cannot change mid-run and applying the combined mask at the
/// head slot is byte-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchRun {
    /// Line address (fits in [`MAX_TOUCH_LINE`]).
    pub line: u64,
    /// Segment-relative sequence number of the first touch.
    pub rel: u32,
    /// Number of touches in the run (`>= 1`; capped at `u16::MAX`).
    pub len: u16,
    /// OR of the members' `1 << word` bits.
    pub mask: u16,
}

/// Streaming run-length encoder for a single core's touch stream.
/// Flushed at core boundaries so runs never merge across cores and
/// encoded byte counts stay thread-count independent.
#[derive(Debug, Default)]
struct RunEncoder {
    runs: Vec<TouchRun>,
    pending: Option<TouchRun>,
}

impl RunEncoder {
    fn push(&mut self, rel: u32, word: u8, line: u64) {
        let bit = 1u16 << (word & 0xF);
        if let Some(run) = &mut self.pending {
            if run.line == line
                && run.len < u16::MAX
                && run.rel.wrapping_add(u32::from(run.len)) == rel
            {
                run.mask |= bit;
                run.len += 1;
                return;
            }
            self.runs.push(*run);
        }
        self.pending = Some(TouchRun { line, rel, len: 1, mask: bit });
    }

    /// Closes the open run (core or segment boundary).
    fn flush(&mut self) {
        if let Some(run) = self.pending.take() {
            self.runs.push(run);
        }
    }

    fn into_runs(mut self) -> Vec<TouchRun> {
        self.flush();
        self.runs
    }
}

/// Run-length encodes a `(rel, word, line)` touch stream (the format the
/// replay workers use internally under [`EventEncoding::RunLength`]).
/// Entries are consumed in order; a run extends only over consecutive
/// `rel`s on the same line.
#[must_use]
pub fn encode_touch_runs(touches: &[(u32, u8, u64)]) -> Vec<TouchRun> {
    let mut enc = RunEncoder::default();
    for &(rel, word, line) in touches {
        enc.push(rel, word, line);
    }
    enc.into_runs()
}

/// Expands runs back into one `(rel, line, mask)` entry per original
/// touch. Individual word bits are not recoverable — every member of a
/// run carries the run's combined mask, which is exactly the information
/// the reduction consumes (see [`TouchRun`] for why that is lossless for
/// the machine state).
#[must_use]
pub fn decode_touch_runs(runs: &[TouchRun]) -> Vec<(u32, u64, u16)> {
    let mut out = Vec::with_capacity(runs.iter().map(|r| usize::from(r.len)).sum());
    for r in runs {
        for i in 0..u32::from(r.len) {
            out.push((r.rel + i, r.line, r.mask));
        }
    }
    out
}

/// The largest line address a packed touch can represent; the pipeline
/// asserts the machine's address space fits at spawn.
pub(crate) const MAX_TOUCH_LINE: u64 = TOUCH_LINE_MASK;

/// A private-hit boundary touch packed into one word: segment-relative
/// sequence number, touched word, and line address. Touches are 90+% of
/// the boundary stream, so their footprint dominates the replay → reduce
/// traffic; packing them keeps the sequential reduction memory-bound
/// stages ~3x smaller than shipping full [`BoundaryEvent`]s.
fn pack_touch(rel: u32, word: u8, line: u64) -> u64 {
    (u64::from(rel) << TOUCH_REL_SHIFT) | (u64::from(word) << TOUCH_WORD_SHIFT) | line
}

fn pack_access(word: u8, write: bool, actor: Actor, region_idx: usize) -> u32 {
    u32::from(word)
        | if write { WRITE_BIT } else { 0 }
        | if matches!(actor, Actor::Accel) { ACTOR_BIT } else { 0 }
        | ((region_idx as u32) << REGION_SHIFT)
}

/// One recorded access of a core (16 B): segment-relative sequence number,
/// line address, and packed word/write/actor/region.
#[derive(Debug, Clone, Copy)]
struct AccessEvent {
    rel: u32,
    meta: u32,
    line: u64,
}

/// One invalidation candidate for a victim core: the writing access's
/// sequence number, the writer's core id, and the line.
#[derive(Debug, Clone, Copy)]
struct InvalEvent {
    rel: u32,
    writer: u32,
    line: u64,
}

/// One fill boundary event for the reduction pass (24 B): an access that
/// missed the private levels and must walk the shared LLC (and DRAM on a
/// further miss). Carries the private latency accumulated up to (and
/// including) the NoC round trip and LLC lookup.
#[derive(Debug, Clone, Copy)]
struct BoundaryEvent {
    rel: u32,
    base_lat: u32,
    meta: u32,
    line: u64,
}

/// Per-segment input for one replay shard: the shard's cores' event and
/// invalidation logs, parallel to its core list.
struct SegmentInput {
    events: Vec<Vec<AccessEvent>>,
    invals: Vec<Vec<InvalEvent>>,
}

/// A shard's touch stream for one lane, in the selected wire encoding.
enum TouchStream {
    /// 8 B packed touches (scattered by their embedded sequence number,
    /// so cross-core order is irrelevant).
    Packed(Vec<u64>),
    /// 16 B run-length groups (see [`TouchRun`]).
    Runs(Vec<TouchRun>),
}

/// The boundary events one replay shard emits *for one reducer lane*:
/// only events whose line hashes into the lane's key range.
struct LaneEvents {
    touches: TouchStream,
    /// LLC fill events, the rare heavyweight boundary crossings.
    fills: Vec<BoundaryEvent>,
}

/// Per-segment output of one replay shard, split by reducer lane.
struct SegmentOutput {
    /// Indexed by lane (`lanes.len() == ExecConfig::lanes()`).
    lanes: Vec<LaneEvents>,
    /// Private-hit timeline contributions: `(core, core_cycles,
    /// accel_cycles)`.
    contrib: Vec<(u32, u64, u64)>,
    l1_hits: u64,
    l2_hits: u64,
    noc_hop_cycles: u64,
    invalidations: u64,
    /// Telemetry: events replayed / fills emitted / invalidation probes.
    events_replayed: u64,
    fill_count: u64,
    inval_probes: u64,
    /// Raw touch count and post-encoding touch bytes across all lanes.
    touch_count: u64,
    touch_bytes_encoded: u64,
}

/// Accumulates one lane's share of a shard's boundary stream during
/// replay, applying the wire encoding on the fly.
struct LaneCollector {
    touches: TouchCollector,
    fills: Vec<BoundaryEvent>,
    raw_touches: u64,
}

enum TouchCollector {
    Packed(Vec<u64>),
    Runs(RunEncoder),
}

impl LaneCollector {
    fn new(encoding: EventEncoding) -> Self {
        let touches = match encoding {
            EventEncoding::Packed => TouchCollector::Packed(Vec::new()),
            EventEncoding::RunLength => TouchCollector::Runs(RunEncoder::default()),
        };
        Self { touches, fills: Vec::new(), raw_touches: 0 }
    }

    fn push_touch(&mut self, rel: u32, word: u8, line: u64) {
        self.raw_touches += 1;
        match &mut self.touches {
            TouchCollector::Packed(v) => v.push(pack_touch(rel, word, line)),
            TouchCollector::Runs(enc) => enc.push(rel, word, line),
        }
    }

    /// Ends the current core's stream: runs must never span cores, or
    /// encoded byte counts would depend on the shard grouping.
    fn end_core(&mut self) {
        if let TouchCollector::Runs(enc) = &mut self.touches {
            enc.flush();
        }
    }

    /// Finishes the segment, returning the wire events plus
    /// `(raw_touches, encoded_bytes)`.
    fn finish(self) -> (LaneEvents, u64, u64) {
        let (touches, bytes) = match self.touches {
            TouchCollector::Packed(v) => {
                let bytes = 8 * v.len() as u64;
                (TouchStream::Packed(v), bytes)
            }
            TouchCollector::Runs(enc) => {
                let runs = enc.into_runs();
                let bytes = (std::mem::size_of::<TouchRun>() * runs.len()) as u64;
                (TouchStream::Runs(runs), bytes)
            }
        };
        (LaneEvents { touches, fills: self.fills }, self.raw_touches, bytes)
    }
}

/// A replay shard: persistent per-core private caches plus the pure
/// latency inputs needed to price hits and fills.
struct ShardReplayer {
    /// Global core ids owned by this shard.
    cores: Vec<usize>,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    mesh: Mesh,
    l1_lat: u64,
    l2_lat: u64,
    llc_lat: u64,
    mlp: u64,
    /// Reducer-lane fan-out: every boundary event is routed by
    /// [`lane_of_line`] over `llc_sets`.
    lanes: usize,
    llc_sets: usize,
    encoding: EventEncoding,
}

impl ShardReplayer {
    fn replay_segment(&mut self, input: &SegmentInput) -> SegmentOutput {
        let mut collectors: Vec<LaneCollector> =
            (0..self.lanes).map(|_| LaneCollector::new(self.encoding)).collect();
        let mut out = SegmentOutput {
            lanes: Vec::new(),
            contrib: Vec::with_capacity(self.cores.len()),
            l1_hits: 0,
            l2_hits: 0,
            noc_hop_cycles: 0,
            invalidations: 0,
            events_replayed: 0,
            fill_count: 0,
            inval_probes: 0,
            touch_count: 0,
            touch_bytes_encoded: 0,
        };
        let ShardReplayer {
            cores,
            l1,
            l2,
            mesh,
            l1_lat,
            l2_lat,
            llc_lat,
            mlp,
            lanes,
            llc_sets,
            ..
        } = self;
        for (i, &core) in cores.iter().enumerate() {
            let (l1, l2) = (&mut l1[i], &mut l2[i]);
            let (mut core_cyc, mut accel_cyc) = (0u64, 0u64);
            let events = &input.events[i];
            let invals = &input.invals[i];
            out.events_replayed += events.len() as u64;
            out.inval_probes += invals.len() as u64;
            let (mut e, mut v) = (0usize, 0usize);
            loop {
                let next_access =
                    e < events.len() && (v >= invals.len() || events[e].rel < invals[v].rel);
                if next_access {
                    let ev = events[e];
                    e += 1;
                    let word = (ev.meta & WORD_MASK) as u8;
                    let write = ev.meta & WRITE_BIT != 0;
                    let accel = ev.meta & ACTOR_BIT != 0;
                    let region =
                        crate::address::Region::ALL[((ev.meta >> REGION_SHIFT) & 0xFF) as usize];
                    let mut latency = *l1_lat;
                    if l1.access(ev.line, word, write, region).hit {
                        out.l1_hits += 1;
                    } else {
                        latency += *l2_lat;
                        if l2.access(ev.line, word, write, region).hit {
                            out.l2_hits += 1;
                        } else {
                            let noc = mesh.round_trip_cycles(core, ev.line);
                            out.noc_hop_cycles += noc;
                            latency += noc + *llc_lat;
                            out.fill_count += 1;
                            let lane = lane_of_line(ev.line, *llc_sets, *lanes);
                            collectors[lane].fills.push(BoundaryEvent {
                                rel: ev.rel,
                                base_lat: u32::try_from(latency).unwrap_or(u32::MAX),
                                meta: ev.meta | ((core as u32) << CORE_SHIFT),
                                line: ev.line,
                            });
                            continue;
                        }
                    }
                    // Private hit: charge the issuing timeline here and
                    // emit a packed touch so the LLC copy learns the word
                    // usage.
                    if accel {
                        accel_cyc += latency.div_ceil(*mlp);
                    } else {
                        core_cyc += latency;
                    }
                    let lane = lane_of_line(ev.line, *llc_sets, *lanes);
                    collectors[lane].push_touch(ev.rel, word, ev.line);
                } else if v < invals.len() {
                    let inv = invals[v];
                    v += 1;
                    // Mirror the serial walk: probe both levels (never
                    // short-circuit — both drops must happen), count one
                    // invalidation if either held the line.
                    let in_l1 = l1.invalidate(inv.line).is_some();
                    let in_l2 = l2.invalidate(inv.line).is_some();
                    if in_l1 || in_l2 {
                        out.invalidations += 1;
                        out.noc_hop_cycles += mesh.one_way_cycles(inv.writer as usize, core);
                    }
                } else {
                    break;
                }
            }
            out.contrib.push((core as u32, core_cyc, accel_cyc));
            for c in &mut collectors {
                c.end_core();
            }
        }
        for c in collectors {
            let (events, raw, bytes) = c.finish();
            out.touch_count += raw;
            out.touch_bytes_encoded += bytes;
            out.lanes.push(events);
        }
        out
    }
}

/// Open-addressed `line → touched-word mask` index mirroring LLC
/// residency, with linear probing and backward-shift deletion.
///
/// In sharded mode this table — not the `touched` field inside the LLC's
/// own lines — is authoritative for word-usage masks: the reduction pass
/// applies one touch per private hit, and probing the set-associative
/// ways for each (a linear scan over full `Line` structs) dominates the
/// whole pipeline. A compact hash keyed by line address makes each touch
/// one or two host cache-line probes. Masks are synced back into the LLC
/// at finalization so the end-of-run flush sees the serial state.
struct TouchIndex {
    keys: Vec<u64>,
    masks: Vec<u16>,
    cap_mask: usize,
}

/// Sentinel for an empty slot; line addresses are bounded by
/// [`MAX_TOUCH_LINE`], so `u64::MAX` can never collide with a real key.
const EMPTY_KEY: u64 = u64::MAX;

impl TouchIndex {
    /// `resident_capacity` is the most lines the LLC can hold; the table
    /// keeps a ≤ 25% load factor so probe chains stay short.
    fn new(resident_capacity: usize) -> Self {
        let size = (resident_capacity * 4).next_power_of_two().max(16);
        Self { keys: vec![EMPTY_KEY; size], masks: vec![0; size], cap_mask: size - 1 }
    }

    #[inline]
    fn slot(&self, line: u64) -> usize {
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) ^ h) as usize & self.cap_mask
    }

    /// Registers a freshly inserted LLC line with its first touched word.
    #[inline]
    fn insert(&mut self, line: u64, mask: u16) {
        let mut i = self.slot(line);
        while self.keys[i] != EMPTY_KEY {
            debug_assert_ne!(self.keys[i], line, "line inserted while already resident");
            i = (i + 1) & self.cap_mask;
        }
        self.keys[i] = line;
        self.masks[i] = mask;
    }

    /// ORs `bits` into a resident line's mask; a no-op when the line is
    /// not resident (matching [`SetAssocCache::touch_word`]).
    #[inline]
    fn or_if_present(&mut self, line: u64, bits: u16) {
        let mut i = self.slot(line);
        loop {
            let k = self.keys[i];
            if k == line {
                self.masks[i] |= bits;
                return;
            }
            if k == EMPTY_KEY {
                return;
            }
            i = (i + 1) & self.cap_mask;
        }
    }

    /// Removes an evicted line, returning its accumulated mask. Uses
    /// backward-shift deletion so probe chains never need tombstones.
    #[inline]
    fn remove(&mut self, line: u64) -> u16 {
        let mut i = self.slot(line);
        while self.keys[i] != line {
            debug_assert_ne!(self.keys[i], EMPTY_KEY, "evicted line must be indexed");
            i = (i + 1) & self.cap_mask;
        }
        let out = self.masks[i];
        loop {
            self.keys[i] = EMPTY_KEY;
            let mut j = i;
            loop {
                j = (j + 1) & self.cap_mask;
                if self.keys[j] == EMPTY_KEY {
                    return out;
                }
                let home = self.slot(self.keys[j]);
                // The entry at j may back-shift into the hole at i only
                // if its home precedes i along the probe chain.
                if (j.wrapping_sub(home) & self.cap_mask) >= (j.wrapping_sub(i) & self.cap_mask) {
                    self.keys[i] = self.keys[j];
                    self.masks[i] = self.masks[j];
                    i = j;
                    break;
                }
            }
        }
    }

    /// The mask of a resident line (finalization sync).
    fn get(&self, line: u64) -> u16 {
        let mut i = self.slot(line);
        while self.keys[i] != line {
            debug_assert_ne!(self.keys[i], EMPTY_KEY, "resident line must be indexed");
            i = (i + 1) & self.cap_mask;
        }
        self.masks[i]
    }
}

/// One reducer lane's share of the shared-state merge: a full-geometry
/// LLC image of which only the lane's own sets are ever touched, the
/// lane's slice of the touch-mask index, and phase-local accumulators
/// that the coordinator folds (order-independently) at phase boundaries.
struct LaneState {
    lane: usize,
    lanes: usize,
    llc: SetAssocCache,
    /// Authoritative touched-word masks for the lane's LLC-resident
    /// lines.
    touch_masks: TouchIndex,
    llc_hits: u64,
    llc_misses: u64,
    state_lines: LineUtilization,
    /// Constant DRAM read latency ([`DramModel::read_line`] is a pure
    /// counter + constant, so lanes price misses locally and the
    /// coordinator folds the traffic *counts* into the envelope).
    mem_lat: u64,
    mlp: u64,
    /// Replay + reduce timeline contributions for the open phase.
    core_sum: Vec<u64>,
    accel_sum: Vec<u64>,
    /// DRAM traffic of the open phase, folded at the next phase mark.
    phase_reads: u64,
    phase_writebacks: u64,
    /// Dense per-segment sequence scratch: slot `rel` holds a plain
    /// touch payload (tags clear), a run head ([`RUN_TAG`]), a fill
    /// reference (`FILL_TAG | shard << 32 | index`), or [`EMPTY_SLOT`].
    scratch: Vec<u64>,
    /// Wall-clock this lane spent reducing (perf telemetry only).
    busy: std::time::Duration,
}

/// A lane's phase-boundary hand-off to the coordinator. Every field is
/// an order-independent sum, which is why lanes can run concurrently
/// without perturbing the serial phase arithmetic.
struct LanePhase {
    core_sum: Vec<u64>,
    accel_sum: Vec<u64>,
    reads: u64,
    writebacks: u64,
}

/// A lane's final hand-off: its LLC image (only its own sets valid),
/// its touch-mask slice, counters, and any tail-segment DRAM traffic
/// recorded after the last phase mark.
struct LaneFinal {
    llc: SetAssocCache,
    touch_masks: TouchIndex,
    llc_hits: u64,
    llc_misses: u64,
    state_lines: LineUtilization,
    reads: u64,
    writebacks: u64,
    busy: std::time::Duration,
}

impl LaneState {
    fn new(lane: usize, lanes: usize, llc: SetAssocCache, cfg: &SimConfig) -> Self {
        let touch_masks = TouchIndex::new(llc.set_count() * llc.ways());
        Self {
            lane,
            lanes,
            llc,
            touch_masks,
            llc_hits: 0,
            llc_misses: 0,
            state_lines: LineUtilization::default(),
            mem_lat: cfg.memory.latency,
            mlp: cfg.accel_mlp,
            core_sum: vec![0; cfg.cores],
            accel_sum: vec![0; cfg.cores],
            phase_reads: 0,
            phase_writebacks: 0,
            scratch: Vec::new(),
            busy: std::time::Duration::ZERO,
        }
    }

    /// Replays this lane's slice of one segment in serial arrival order.
    /// `per_shard[s]` is shard `s`'s [`LaneEvents`] for this lane.
    fn reduce_segment(&mut self, len: u32, per_shard: &[&LaneEvents]) {
        self.scratch.clear();
        self.scratch.resize(len as usize, EMPTY_SLOT);
        for (shard, ev) in per_shard.iter().enumerate() {
            match &ev.touches {
                TouchStream::Packed(touches) => {
                    for &t in touches {
                        self.scratch[(t >> TOUCH_REL_SHIFT) as usize] = t & TOUCH_PAYLOAD_MASK;
                    }
                }
                TouchStream::Runs(runs) => {
                    for r in runs {
                        self.scratch[r.rel as usize] =
                            RUN_TAG | (u64::from(r.mask) << TOUCH_WORD_SHIFT) | r.line;
                    }
                }
            }
            let tag = FILL_TAG | ((shard as u64) << 32);
            for (i, f) in ev.fills.iter().enumerate() {
                self.scratch[f.rel as usize] = tag | i as u64;
            }
        }
        for idx in 0..self.scratch.len() {
            let slot = self.scratch[idx];
            if slot == EMPTY_SLOT {
                // Another lane's event, or covered by a preceding run.
                continue;
            }
            if slot & FILL_TAG == 0 {
                // A private-hit touch (single or run head): propagate
                // word usage to the LLC copy (if resident). Never
                // mutates replacement state, so it only needs the O(1)
                // mask index, not a way scan.
                let bits = if slot & RUN_TAG != 0 {
                    ((slot >> TOUCH_WORD_SHIFT) & 0xFFFF) as u16
                } else {
                    1u16 << ((slot >> TOUCH_WORD_SHIFT) & 0xF)
                };
                self.touch_masks.or_if_present(slot & TOUCH_LINE_MASK, bits);
                continue;
            }
            let shard = ((slot >> 32) & 0x3FFF_FFFF) as usize;
            let ev = per_shard[shard].fills[(slot & 0xFFFF_FFFF) as usize];
            debug_assert_eq!(
                lane_of_line(ev.line, self.llc.set_count(), self.lanes),
                self.lane,
                "fill routed to the wrong lane"
            );
            let word = (ev.meta & WORD_MASK) as u8;
            let write = ev.meta & WRITE_BIT != 0;
            let region = crate::address::Region::ALL[((ev.meta >> REGION_SHIFT) & 0xFF) as usize];
            let core = ((ev.meta >> CORE_SHIFT) & 0xFF) as usize;
            let mut latency = u64::from(ev.base_lat);
            let llc_out = self.llc.access(ev.line, word, write, region);
            if llc_out.hit {
                self.llc_hits += 1;
                self.touch_masks.or_if_present(ev.line, 1 << word);
            } else {
                self.llc_misses += 1;
                self.phase_reads += 1;
                latency += self.mem_lat;
            }
            if let Some(evicted) = llc_out.evicted {
                // The side index, not the line's internal counter, holds
                // the authoritative touched mask in sharded mode.
                let mask = self.touch_masks.remove(evicted.line);
                if evicted.region.is_state_region() {
                    self.state_lines.record(mask.count_ones());
                }
                if evicted.dirty {
                    self.phase_writebacks += 1;
                }
            }
            if !llc_out.hit {
                self.touch_masks.insert(ev.line, 1 << word);
            }
            if ev.meta & ACTOR_BIT != 0 {
                self.accel_sum[core] += latency.div_ceil(self.mlp);
            } else {
                self.core_sum[core] += latency;
            }
        }
    }

    /// Takes the open phase's accumulators, resetting them.
    fn take_phase(&mut self) -> LanePhase {
        let n = self.core_sum.len();
        LanePhase {
            core_sum: std::mem::replace(&mut self.core_sum, vec![0; n]),
            accel_sum: std::mem::replace(&mut self.accel_sum, vec![0; n]),
            reads: std::mem::take(&mut self.phase_reads),
            writebacks: std::mem::take(&mut self.phase_writebacks),
        }
    }

    fn finish(self) -> LaneFinal {
        LaneFinal {
            llc: self.llc,
            touch_masks: self.touch_masks,
            llc_hits: self.llc_hits,
            llc_misses: self.llc_misses,
            state_lines: self.state_lines,
            reads: self.phase_reads,
            writebacks: self.phase_writebacks,
            busy: self.busy,
        }
    }
}

/// Telemetry per replay shard, exported through a [`ShardedRecorder`].
#[derive(Debug, Clone, Copy, Default)]
struct ShardCounters {
    events_replayed: u64,
    fills: u64,
    inval_probes: u64,
    invalidations: u64,
    touches: u64,
    touch_bytes_encoded: u64,
}

fn export_shard_telemetry(counters: &[ShardCounters]) -> (Snapshot, Vec<(u64, Snapshot)>) {
    let telemetry = ShardedRecorder::new();
    for (i, c) in counters.iter().enumerate() {
        let mut shard = telemetry.shard(i as u64);
        shard.counter(keys::SHARD_EVENTS_REPLAYED, c.events_replayed);
        shard.counter(keys::SHARD_BOUNDARY_FILLS, c.fills);
        shard.counter(keys::SHARD_BOUNDARY_TOUCHES, c.touches);
        shard.counter(keys::SHARD_TOUCH_BYTES_ENCODED, c.touch_bytes_encoded);
        shard.counter(keys::SHARD_INVAL_PROBES, c.inval_probes);
        shard.counter(keys::SHARD_INVALIDATIONS, c.invalidations);
        shard.finish();
    }
    (telemetry.merged(), telemetry.shard_snapshots())
}

fn build_report(
    counters: &[ShardCounters],
    lanes: usize,
    encoding: EventEncoding,
    reduce_wall: Vec<std::time::Duration>,
) -> ExecPipelineReport {
    let touch_events: u64 = counters.iter().map(|c| c.touches).sum();
    let fill_events: u64 = counters.iter().map(|c| c.fills).sum();
    ExecPipelineReport {
        reduce_lanes: lanes,
        encoding,
        reduce_wall,
        touch_events,
        touch_bytes_raw: 8 * touch_events,
        touch_bytes_encoded: counters.iter().map(|c| c.touch_bytes_encoded).sum(),
        fill_events,
        fill_bytes: 24 * fill_events,
        setup: std::time::Duration::ZERO,
    }
}

/// The single-lane sequential reduction state: one [`LaneState`] owning
/// the whole LLC, plus the coordinator-side accounting (DRAM envelope,
/// breakdown, replay counters) that the laned topology keeps on its
/// coordinator thread.
struct Reducer {
    lane: LaneState,
    dram: DramModel,
    breakdown: TimeBreakdown,
    l1_hits: u64,
    l2_hits: u64,
    noc_hop_cycles: u64,
    invalidations: u64,
    /// Private-hit timeline contributions for the open phase.
    contrib_core: Vec<u64>,
    contrib_accel: Vec<u64>,
    shard_counters: Vec<ShardCounters>,
    encoding: EventEncoding,
}

impl Reducer {
    fn new(
        llc: SetAssocCache,
        dram: DramModel,
        cfg: &SimConfig,
        shards: usize,
        encoding: EventEncoding,
    ) -> Self {
        Self {
            lane: LaneState::new(0, 1, llc, cfg),
            dram,
            breakdown: TimeBreakdown::default(),
            l1_hits: 0,
            l2_hits: 0,
            noc_hop_cycles: 0,
            invalidations: 0,
            contrib_core: vec![0; cfg.cores],
            contrib_accel: vec![0; cfg.cores],
            shard_counters: vec![ShardCounters::default(); shards],
            encoding,
        }
    }

    fn reduce_segment(&mut self, len: u32, outs: &[SegmentOutput]) {
        let t0 = std::time::Instant::now();
        debug_assert_eq!(
            outs.iter().map(|o| o.touch_count + o.fill_count).sum::<u64>(),
            u64::from(len),
            "every sequence slot must carry one event"
        );
        for (shard, out) in outs.iter().enumerate() {
            self.l1_hits += out.l1_hits;
            self.l2_hits += out.l2_hits;
            self.noc_hop_cycles += out.noc_hop_cycles;
            self.invalidations += out.invalidations;
            let c = &mut self.shard_counters[shard];
            c.events_replayed += out.events_replayed;
            c.fills += out.fill_count;
            c.inval_probes += out.inval_probes;
            c.invalidations += out.invalidations;
            c.touches += out.touch_count;
            c.touch_bytes_encoded += out.touch_bytes_encoded;
            for &(core, cc, ac) in &out.contrib {
                self.contrib_core[core as usize] += cc;
                self.contrib_accel[core as usize] += ac;
            }
        }
        let per_shard: Vec<&LaneEvents> = outs.iter().map(|o| &o.lanes[0]).collect();
        self.lane.reduce_segment(len, &per_shard);
        self.lane.busy += t0.elapsed();
    }

    fn end_phase(&mut self, kind: PhaseKind, main_core: &[u64], main_accel: &[u64]) -> u64 {
        let ph = self.lane.take_phase();
        self.dram.absorb_traffic(ph.reads, ph.writebacks);
        let compute = (0..self.contrib_core.len())
            .map(|c| {
                let core = main_core[c] + self.contrib_core[c] + ph.core_sum[c];
                let accel = main_accel[c] + self.contrib_accel[c] + ph.accel_sum[c];
                core.max(accel)
            })
            .max()
            .unwrap_or(0);
        let cycles = self.dram.close_phase(compute);
        self.contrib_core.iter_mut().for_each(|c| *c = 0);
        self.contrib_accel.iter_mut().for_each(|c| *c = 0);
        self.breakdown.add(kind, cycles);
        cycles
    }

    fn into_final(mut self) -> FinalState {
        let fin = self.lane.finish();
        // Tail segments after the last phase mark still moved DRAM
        // traffic; fold it so lifetime totals match serial.
        self.dram.absorb_traffic(fin.reads, fin.writebacks);
        // Hand the LLC back with serial-exact touched masks so the
        // machine's end-of-run flush sees what a serial walk left behind.
        let mut llc = fin.llc;
        let masks = fin.touch_masks;
        llc.sync_touched(|line| masks.get(line));
        let (shard_telemetry, shard_snapshots) = export_shard_telemetry(&self.shard_counters);
        let report = build_report(&self.shard_counters, 1, self.encoding, vec![fin.busy]);
        FinalState {
            llc,
            dram: self.dram,
            breakdown: self.breakdown,
            l1_hits: self.l1_hits,
            l2_hits: self.l2_hits,
            llc_hits: fin.llc_hits,
            llc_misses: fin.llc_misses,
            noc_hop_cycles: self.noc_hop_cycles,
            invalidations: self.invalidations,
            state_lines: fin.state_lines,
            shard_telemetry,
            shard_snapshots,
            report,
        }
    }
}

/// Messages from the coordinator to one reducer lane.
enum LaneMsg {
    /// One segment's worth of this lane's events, indexed by shard.
    Segment { len: u32, per_shard: Vec<LaneEvents> },
    /// Phase mark: reply with the lane's [`LanePhase`] accumulators.
    EndPhase,
}

/// The multi-lane reduction coordinator: owns everything cross-lane
/// (DRAM envelope, breakdown, replay-side counters) and fans segments
/// out to `k` lane threads, each merging its key range in serial
/// arrival order.
struct Coordinator {
    lanes: usize,
    llc_sets: usize,
    encoding: EventEncoding,
    dram: DramModel,
    breakdown: TimeBreakdown,
    l1_hits: u64,
    l2_hits: u64,
    noc_hop_cycles: u64,
    invalidations: u64,
    contrib_core: Vec<u64>,
    contrib_accel: Vec<u64>,
    shard_counters: Vec<ShardCounters>,
    lane_txs: Vec<mpsc::SyncSender<LaneMsg>>,
    phase_rxs: Vec<mpsc::Receiver<LanePhase>>,
    handles: Vec<JoinHandle<LaneFinal>>,
}

fn run_lane(
    rx: &mpsc::Receiver<LaneMsg>,
    phase_tx: &mpsc::Sender<LanePhase>,
    mut state: LaneState,
) -> LaneFinal {
    while let Ok(msg) = rx.recv() {
        match msg {
            LaneMsg::Segment { len, per_shard } => {
                let t0 = std::time::Instant::now();
                let refs: Vec<&LaneEvents> = per_shard.iter().collect();
                state.reduce_segment(len, &refs);
                state.busy += t0.elapsed();
            }
            LaneMsg::EndPhase => {
                let _ = phase_tx.send(state.take_phase());
            }
        }
    }
    state.finish()
}

impl Coordinator {
    fn new(
        llc: SetAssocCache,
        dram: DramModel,
        cfg: &SimConfig,
        shards: usize,
        lanes: usize,
        encoding: EventEncoding,
    ) -> Self {
        let llc_sets = llc.set_count();
        let mut lane_txs = Vec::with_capacity(lanes);
        let mut phase_rxs = Vec::with_capacity(lanes);
        let mut handles = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            // Every lane gets a full-geometry image of the (cold) LLC;
            // it will only ever touch its own sets.
            let state = LaneState::new(lane, lanes, llc.clone(), cfg);
            let (tx, rx) = mpsc::sync_channel::<LaneMsg>(8);
            let (phase_tx, phase_rx) = mpsc::channel::<LanePhase>();
            let handle = std::thread::Builder::new()
                .name(format!("tdgraph-lane{lane}"))
                .spawn(move || run_lane(&rx, &phase_tx, state))
                .expect("spawn reduce lane");
            lane_txs.push(tx);
            phase_rxs.push(phase_rx);
            handles.push(handle);
        }
        Self {
            lanes,
            llc_sets,
            encoding,
            dram,
            breakdown: TimeBreakdown::default(),
            l1_hits: 0,
            l2_hits: 0,
            noc_hop_cycles: 0,
            invalidations: 0,
            contrib_core: vec![0; cfg.cores],
            contrib_accel: vec![0; cfg.cores],
            shard_counters: vec![ShardCounters::default(); shards],
            lane_txs,
            phase_rxs,
            handles,
        }
    }

    fn reduce_segment(&mut self, len: u32, outs: Vec<SegmentOutput>) {
        debug_assert_eq!(
            outs.iter().map(|o| o.touch_count + o.fill_count).sum::<u64>(),
            u64::from(len),
            "every sequence slot must carry one event"
        );
        for (shard, out) in outs.iter().enumerate() {
            self.l1_hits += out.l1_hits;
            self.l2_hits += out.l2_hits;
            self.noc_hop_cycles += out.noc_hop_cycles;
            self.invalidations += out.invalidations;
            let c = &mut self.shard_counters[shard];
            c.events_replayed += out.events_replayed;
            c.fills += out.fill_count;
            c.inval_probes += out.inval_probes;
            c.invalidations += out.invalidations;
            c.touches += out.touch_count;
            c.touch_bytes_encoded += out.touch_bytes_encoded;
            for &(core, cc, ac) in &out.contrib {
                self.contrib_core[core as usize] += cc;
                self.contrib_accel[core as usize] += ac;
            }
        }
        // Transpose shard-major to lane-major and fan out.
        let mut per_lane: Vec<Vec<LaneEvents>> =
            (0..self.lanes).map(|_| Vec::with_capacity(outs.len())).collect();
        for out in outs {
            for (lane, events) in out.lanes.into_iter().enumerate() {
                per_lane[lane].push(events);
            }
        }
        for (tx, per_shard) in self.lane_txs.iter().zip(per_lane) {
            tx.send(LaneMsg::Segment { len, per_shard }).expect("reduce lane alive");
        }
    }

    fn end_phase(&mut self, kind: PhaseKind, main_core: &[u64], main_accel: &[u64]) -> u64 {
        for tx in &self.lane_txs {
            tx.send(LaneMsg::EndPhase).expect("reduce lane alive");
        }
        let cores = self.contrib_core.len();
        let mut core_sum = vec![0u64; cores];
        let mut accel_sum = vec![0u64; cores];
        for rx in &self.phase_rxs {
            let ph = rx.recv().expect("reduce lane answers phase marks");
            for c in 0..cores {
                core_sum[c] += ph.core_sum[c];
                accel_sum[c] += ph.accel_sum[c];
            }
            self.dram.absorb_traffic(ph.reads, ph.writebacks);
        }
        let compute = (0..cores)
            .map(|c| {
                let core = main_core[c] + self.contrib_core[c] + core_sum[c];
                let accel = main_accel[c] + self.contrib_accel[c] + accel_sum[c];
                core.max(accel)
            })
            .max()
            .unwrap_or(0);
        let cycles = self.dram.close_phase(compute);
        self.contrib_core.iter_mut().for_each(|c| *c = 0);
        self.contrib_accel.iter_mut().for_each(|c| *c = 0);
        self.breakdown.add(kind, cycles);
        cycles
    }

    fn into_final(mut self) -> FinalState {
        // Closing the channels is the shutdown signal.
        self.lane_txs.clear();
        let mut finals: Vec<LaneFinal> = Vec::with_capacity(self.lanes);
        for handle in self.handles.drain(..) {
            match handle.join() {
                Ok(fin) => finals.push(fin),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        let lanes = self.lanes;
        let llc_sets = self.llc_sets;
        let mut iter = finals.into_iter();
        let first = iter.next().expect("at least one lane");
        self.dram.absorb_traffic(first.reads, first.writebacks);
        let mut llc = first.llc;
        let mut llc_hits = first.llc_hits;
        let mut llc_misses = first.llc_misses;
        let mut state_lines = first.state_lines;
        let mut reduce_wall = vec![first.busy];
        let mut masks = vec![first.touch_masks];
        for (i, fin) in iter.enumerate() {
            let lane = i + 1;
            self.dram.absorb_traffic(fin.reads, fin.writebacks);
            // Graft the lane's sets into the merged image: lane `l` owns
            // exactly the sets whose duel bank `b` has `b % lanes == l`.
            llc.adopt_sets(&fin.llc, |set| (set % crate::cache::DUEL_BANKS) % lanes == lane);
            llc_hits += fin.llc_hits;
            llc_misses += fin.llc_misses;
            state_lines.lines += fin.state_lines.lines;
            state_lines.touched_words += fin.state_lines.touched_words;
            reduce_wall.push(fin.busy);
            masks.push(fin.touch_masks);
        }
        llc.sync_touched(|line| masks[lane_of_line(line, llc_sets, lanes)].get(line));
        let (shard_telemetry, shard_snapshots) = export_shard_telemetry(&self.shard_counters);
        let report = build_report(&self.shard_counters, lanes, self.encoding, reduce_wall);
        FinalState {
            llc,
            dram: self.dram,
            breakdown: self.breakdown,
            l1_hits: self.l1_hits,
            l2_hits: self.l2_hits,
            llc_hits,
            llc_misses,
            noc_hop_cycles: self.noc_hop_cycles,
            invalidations: self.invalidations,
            state_lines,
            shard_telemetry,
            shard_snapshots,
            report,
        }
    }
}

/// The reduction backend behind the ordered segment/phase stream:
/// the classic single sequential reducer, or the lane coordinator.
enum ReduceBackend {
    Single(Box<Reducer>),
    Laned(Box<Coordinator>),
}

impl ReduceBackend {
    fn reduce_segment(&mut self, len: u32, outs: Vec<SegmentOutput>) {
        match self {
            ReduceBackend::Single(r) => r.reduce_segment(len, &outs),
            ReduceBackend::Laned(c) => c.reduce_segment(len, outs),
        }
    }

    fn end_phase(&mut self, kind: PhaseKind, main_core: &[u64], main_accel: &[u64]) -> u64 {
        match self {
            ReduceBackend::Single(r) => r.end_phase(kind, main_core, main_accel),
            ReduceBackend::Laned(c) => c.end_phase(kind, main_core, main_accel),
        }
    }

    fn into_final(self) -> FinalState {
        match self {
            ReduceBackend::Single(r) => r.into_final(),
            ReduceBackend::Laned(c) => c.into_final(),
        }
    }
}

/// Wall-clock and boundary-traffic telemetry of one sharded run,
/// surfaced next to (never inside) the deterministic result surfaces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecPipelineReport {
    /// Reducer lanes the run used (1 = single sequential reducer).
    pub reduce_lanes: usize,
    /// Boundary-event encoding the run used.
    pub encoding: EventEncoding,
    /// Wall-clock each lane spent reducing, in lane order.
    pub reduce_wall: Vec<std::time::Duration>,
    /// Private-hit touches crossing the replay → reduce boundary.
    pub touch_events: u64,
    /// Touch stream bytes at the raw 8 B/touch packing.
    pub touch_bytes_raw: u64,
    /// Touch stream bytes after the selected encoding.
    pub touch_bytes_encoded: u64,
    /// LLC fill events crossing the boundary (always 24 B each).
    pub fill_events: u64,
    /// Fill stream bytes.
    pub fill_bytes: u64,
    /// One-time pipeline setup (thread spawn + cache hand-off); filled
    /// in by the machine so benches can exclude it from merge overhead.
    pub setup: std::time::Duration,
}

impl ExecPipelineReport {
    /// The longest lane's reduce wall-clock (the reduce critical path).
    #[must_use]
    pub fn reduce_wall_max(&self) -> std::time::Duration {
        self.reduce_wall.iter().copied().max().unwrap_or_default()
    }
}

/// Everything the pipeline hands back to the machine at finalization.
pub(crate) struct FinalState {
    pub(crate) llc: SetAssocCache,
    pub(crate) dram: DramModel,
    pub(crate) breakdown: TimeBreakdown,
    pub(crate) l1_hits: u64,
    pub(crate) l2_hits: u64,
    pub(crate) llc_hits: u64,
    pub(crate) llc_misses: u64,
    pub(crate) noc_hop_cycles: u64,
    pub(crate) invalidations: u64,
    pub(crate) state_lines: LineUtilization,
    /// Merged per-shard replay telemetry (key-ordered, thread-count
    /// independent totals).
    pub(crate) shard_telemetry: Snapshot,
    /// The per-shard snapshots behind the merge, in shard order.
    pub(crate) shard_snapshots: Vec<(u64, Snapshot)>,
    /// Perf/traffic telemetry (wall-clock, never deterministic).
    pub(crate) report: ExecPipelineReport,
}

enum ReduceMsg {
    SegMeta { seg: u64, len: u32 },
    SegOut { seg: u64, shard: usize, out: SegmentOutput },
    EndPhase { seg_end: u64, kind: PhaseKind, main_core: Vec<u64>, main_accel: Vec<u64> },
    Drain { reply: mpsc::Sender<u64> },
}

enum CombinedMsg {
    Segment { len: u32, input: SegmentInput },
    EndPhase { kind: PhaseKind, main_core: Vec<u64>, main_accel: Vec<u64> },
    Drain { reply: mpsc::Sender<u64> },
}

enum Senders {
    Split { replayers: Vec<mpsc::SyncSender<SegmentInput>>, reducer: mpsc::SyncSender<ReduceMsg> },
    Combined { tx: mpsc::SyncSender<CombinedMsg> },
}

/// The live pipeline: record-side state plus the worker threads.
pub(crate) struct Pipeline {
    /// Global sequence number of the next access.
    seq: u64,
    seg_base: u64,
    seg_index: u64,
    /// Per-core event logs for the open segment.
    events: Vec<Vec<AccessEvent>>,
    invals: Vec<Vec<InvalEvent>>,
    /// Shard → cores (replay grouping actually spawned).
    shard_cores: Vec<Vec<usize>>,
    senders: Option<Senders>,
    replay_handles: Vec<JoinHandle<()>>,
    final_handle: Option<JoinHandle<FinalState>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("seq", &self.seq)
            .field("shards", &self.shard_cores.len())
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Spawns the worker topology for `exec`, taking ownership of the
    /// machine's caches and DRAM model.
    pub(crate) fn spawn(
        cfg: &SimConfig,
        plan: &ShardPlan,
        exec: ExecConfig,
        l1: Vec<SetAssocCache>,
        l2: Vec<SetAssocCache>,
        llc: SetAssocCache,
        dram: DramModel,
    ) -> Self {
        let workers = exec.workers();
        let lanes = exec.lanes();
        let encoding = exec.encoding();
        assert!(workers >= 1, "sharded execution needs at least one worker thread");
        if let Err(e) = exec.validate() {
            panic!("invalid ExecConfig: {e}");
        }
        assert_eq!(plan.cores(), cfg.cores, "shard plan must cover every simulated core");
        let replay_shards = exec.replay_shards();
        // Regroup the plan onto the spawned shard count (plans with a
        // different shard count redistribute round-robin, preserving the
        // plan's grouping where possible).
        let mut shard_cores: Vec<Vec<usize>> = vec![Vec::new(); replay_shards];
        for s in 0..plan.shards() {
            shard_cores[s % replay_shards].extend_from_slice(plan.cores_for(s));
        }
        for cores in &mut shard_cores {
            cores.sort_unstable();
        }
        let mut l1_by_core: Vec<Option<SetAssocCache>> = l1.into_iter().map(Some).collect();
        let mut l2_by_core: Vec<Option<SetAssocCache>> = l2.into_iter().map(Some).collect();
        let mesh = Mesh::new(cfg.mesh_dim, cfg.hop_cycles);
        let llc_sets = llc.set_count();
        let make_replayer = |cores: &Vec<usize>,
                             l1s: &mut Vec<Option<SetAssocCache>>,
                             l2s: &mut Vec<Option<SetAssocCache>>| {
            ShardReplayer {
                cores: cores.clone(),
                l1: cores.iter().map(|&c| l1s[c].take().expect("core owned once")).collect(),
                l2: cores.iter().map(|&c| l2s[c].take().expect("core owned once")).collect(),
                mesh,
                l1_lat: cfg.l1d.latency,
                l2_lat: cfg.l2.latency,
                llc_lat: cfg.llc.latency,
                mlp: cfg.accel_mlp,
                lanes,
                llc_sets,
                encoding,
            }
        };

        let mut replay_handles = Vec::new();
        let senders;
        let final_handle;
        if workers == 1 && lanes == 1 {
            let reducer = Reducer::new(llc, dram, cfg, replay_shards, encoding);
            let mut shard = make_replayer(&shard_cores[0], &mut l1_by_core, &mut l2_by_core);
            let (tx, rx) = mpsc::sync_channel::<CombinedMsg>(8);
            let handle = std::thread::Builder::new()
                .name("tdgraph-shard".into())
                .spawn(move || run_combined(&rx, &mut shard, reducer))
                .expect("spawn combined shard worker");
            senders = Senders::Combined { tx };
            final_handle = Some(handle);
        } else {
            let backend = if lanes == 1 {
                ReduceBackend::Single(Box::new(Reducer::new(
                    llc,
                    dram,
                    cfg,
                    replay_shards,
                    encoding,
                )))
            } else {
                ReduceBackend::Laned(Box::new(Coordinator::new(
                    llc,
                    dram,
                    cfg,
                    replay_shards,
                    lanes,
                    encoding,
                )))
            };
            let (red_tx, red_rx) = mpsc::sync_channel::<ReduceMsg>(replay_shards * 4 + 8);
            let mut replayer_txs = Vec::with_capacity(replay_shards);
            for (s, cores) in shard_cores.iter().enumerate() {
                let mut shard = make_replayer(cores, &mut l1_by_core, &mut l2_by_core);
                let (tx, rx) = mpsc::sync_channel::<SegmentInput>(4);
                let out_tx = red_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("tdgraph-replay{s}"))
                    .spawn(move || {
                        let mut seg = 0u64;
                        while let Ok(input) = rx.recv() {
                            let out = shard.replay_segment(&input);
                            if out_tx.send(ReduceMsg::SegOut { seg, shard: s, out }).is_err() {
                                break;
                            }
                            seg += 1;
                        }
                    })
                    .expect("spawn replay worker");
                replayer_txs.push(tx);
                replay_handles.push(handle);
            }
            let shards = replay_shards;
            let handle = std::thread::Builder::new()
                .name("tdgraph-reduce".into())
                .spawn(move || run_reducer(&red_rx, backend, shards))
                .expect("spawn reduce worker");
            senders = Senders::Split { replayers: replayer_txs, reducer: red_tx };
            final_handle = Some(handle);
        }

        Self {
            seq: 0,
            seg_base: 0,
            seg_index: 0,
            events: (0..cfg.cores).map(|_| Vec::new()).collect(),
            invals: (0..cfg.cores).map(|_| Vec::new()).collect(),
            shard_cores,
            senders: Some(senders),
            replay_handles,
            final_handle: Some(handle_opt_unwrap(final_handle)),
        }
    }

    /// Queues an invalidation candidate for `victim` at the *next* access's
    /// sequence number (the write being recorded).
    pub(crate) fn push_inval(&mut self, victim: usize, writer: usize, line: u64) {
        let rel = (self.seq - self.seg_base) as u32;
        self.invals[victim].push(InvalEvent { rel, writer: writer as u32, line });
    }

    /// Records one access and advances the sequence number, cutting a
    /// segment when full.
    pub(crate) fn record(
        &mut self,
        core: usize,
        actor: Actor,
        region: crate::address::Region,
        line: u64,
        word: u8,
        write: bool,
    ) {
        let rel = (self.seq - self.seg_base) as u32;
        self.events[core].push(AccessEvent {
            rel,
            meta: pack_access(word, write, actor, region.index()),
            line,
        });
        self.seq += 1;
        if self.seq - self.seg_base == SEG {
            self.cut_segment();
        }
    }

    fn cut_segment(&mut self) {
        let len = (self.seq - self.seg_base) as u32;
        if len == 0 {
            return;
        }
        let seg = self.seg_index;
        let mut inputs: Vec<SegmentInput> = self
            .shard_cores
            .iter()
            .map(|cores| SegmentInput {
                events: cores.iter().map(|&c| std::mem::take(&mut self.events[c])).collect(),
                invals: cores.iter().map(|&c| std::mem::take(&mut self.invals[c])).collect(),
            })
            .collect();
        match self.senders.as_ref().expect("pipeline finalized") {
            Senders::Split { replayers, reducer } => {
                reducer.send(ReduceMsg::SegMeta { seg, len }).expect("reduce worker alive");
                for (tx, input) in replayers.iter().zip(inputs.drain(..)) {
                    tx.send(input).expect("replay worker alive");
                }
            }
            Senders::Combined { tx } => {
                let input = inputs.pop().expect("single shard");
                let _ = seg;
                tx.send(CombinedMsg::Segment { len, input }).expect("shard worker alive");
            }
        }
        self.seg_base = self.seq;
        self.seg_index += 1;
    }

    /// Ships the open partial segment and a phase marker carrying the
    /// main-side timeline snapshot.
    pub(crate) fn end_phase(&mut self, kind: PhaseKind, main_core: Vec<u64>, main_accel: Vec<u64>) {
        self.cut_segment();
        let seg_end = self.seg_index;
        match self.senders.as_ref().expect("pipeline finalized") {
            Senders::Split { reducer, .. } => reducer
                .send(ReduceMsg::EndPhase { seg_end, kind, main_core, main_accel })
                .expect("reduce worker alive"),
            Senders::Combined { tx } => tx
                .send(CombinedMsg::EndPhase { kind, main_core, main_accel })
                .expect("shard worker alive"),
        }
    }

    /// Blocks until the most recently marked phase is reduced; returns its
    /// exact cycle count (identical to the serial `end_phase` return).
    pub(crate) fn drain_last_phase(&mut self) -> u64 {
        let (reply_tx, reply_rx) = mpsc::channel();
        match self.senders.as_ref().expect("pipeline finalized") {
            Senders::Split { reducer, .. } => {
                reducer.send(ReduceMsg::Drain { reply: reply_tx }).expect("reduce worker alive");
            }
            Senders::Combined { tx } => {
                tx.send(CombinedMsg::Drain { reply: reply_tx }).expect("shard worker alive");
            }
        }
        reply_rx.recv().expect("reduce worker answers drains")
    }

    /// Ships any tail events, closes the channels, joins every worker, and
    /// returns the merged machine state.
    pub(crate) fn finalize(mut self) -> FinalState {
        self.cut_segment();
        drop(self.senders.take());
        for handle in self.replay_handles.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        let handle = self.final_handle.take().expect("pipeline finalized once");
        match handle.join() {
            Ok(state) => state,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

fn handle_opt_unwrap(h: Option<JoinHandle<FinalState>>) -> JoinHandle<FinalState> {
    match h {
        Some(h) => h,
        None => unreachable!("final handle always set"),
    }
}

fn run_combined(
    rx: &mpsc::Receiver<CombinedMsg>,
    shard: &mut ShardReplayer,
    mut reducer: Reducer,
) -> FinalState {
    let mut phase_cycles: Vec<u64> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            CombinedMsg::Segment { len, input } => {
                let out = shard.replay_segment(&input);
                reducer.reduce_segment(len, &[out]);
            }
            CombinedMsg::EndPhase { kind, main_core, main_accel } => {
                phase_cycles.push(reducer.end_phase(kind, &main_core, &main_accel));
            }
            CombinedMsg::Drain { reply } => {
                let cycles = phase_cycles.last().copied().unwrap_or(0);
                let _ = reply.send(cycles);
            }
        }
    }
    reducer.into_final()
}

fn run_reducer(
    rx: &mpsc::Receiver<ReduceMsg>,
    mut reducer: ReduceBackend,
    shards: usize,
) -> FinalState {
    let mut next_seg = 0u64;
    let mut metas: BTreeMap<u64, u32> = BTreeMap::new();
    let mut outs: BTreeMap<u64, Vec<Option<SegmentOutput>>> = BTreeMap::new();
    let mut marks: VecDeque<(u64, PhaseKind, Vec<u64>, Vec<u64>)> = VecDeque::new();
    let mut drains: VecDeque<(u64, mpsc::Sender<u64>)> = VecDeque::new();
    let mut phases_announced = 0u64;
    let mut phase_cycles: Vec<u64> = Vec::new();

    let progress = |next_seg: &mut u64,
                    metas: &mut BTreeMap<u64, u32>,
                    outs: &mut BTreeMap<u64, Vec<Option<SegmentOutput>>>,
                    marks: &mut VecDeque<(u64, PhaseKind, Vec<u64>, Vec<u64>)>,
                    drains: &mut VecDeque<(u64, mpsc::Sender<u64>)>,
                    phase_cycles: &mut Vec<u64>,
                    reducer: &mut ReduceBackend| {
        loop {
            // Close every phase whose segments are all reduced.
            while let Some(&(seg_end, _, _, _)) = marks.front() {
                if seg_end > *next_seg {
                    break;
                }
                let (_, kind, mc, ma) = match marks.pop_front() {
                    Some(m) => m,
                    None => break,
                };
                phase_cycles.push(reducer.end_phase(kind, &mc, &ma));
            }
            // Answer drains whose target phase is closed.
            while let Some(&(target, _)) = drains.front() {
                if target > phase_cycles.len() as u64 {
                    break;
                }
                if let Some((target, reply)) = drains.pop_front() {
                    let cycles = if target == 0 { 0 } else { phase_cycles[target as usize - 1] };
                    let _ = reply.send(cycles);
                }
            }
            // Reduce the next segment if complete.
            let ready = metas.get(next_seg).copied().is_some()
                && outs.get(next_seg).is_some_and(|v| v.iter().all(Option::is_some));
            if !ready {
                break;
            }
            let len = match metas.remove(next_seg) {
                Some(len) => len,
                None => break,
            };
            let segouts: Vec<SegmentOutput> =
                outs.remove(next_seg).unwrap_or_default().into_iter().flatten().collect();
            reducer.reduce_segment(len, segouts);
            *next_seg += 1;
        }
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            ReduceMsg::SegMeta { seg, len } => {
                metas.insert(seg, len);
            }
            ReduceMsg::SegOut { seg, shard, out } => {
                // Slot by shard index: per-shard telemetry attribution must
                // not depend on cross-thread arrival order.
                let slots = outs.entry(seg).or_insert_with(|| {
                    let mut v = Vec::with_capacity(shards);
                    v.resize_with(shards, || None);
                    v
                });
                slots[shard] = Some(out);
            }
            ReduceMsg::EndPhase { seg_end, kind, main_core, main_accel } => {
                phases_announced += 1;
                marks.push_back((seg_end, kind, main_core, main_accel));
            }
            ReduceMsg::Drain { reply } => {
                drains.push_back((phases_announced, reply));
            }
        }
        progress(
            &mut next_seg,
            &mut metas,
            &mut outs,
            &mut marks,
            &mut drains,
            &mut phase_cycles,
            &mut reducer,
        );
    }
    progress(
        &mut next_seg,
        &mut metas,
        &mut outs,
        &mut marks,
        &mut drains,
        &mut phase_cycles,
        &mut reducer,
    );
    debug_assert!(metas.is_empty() && outs.is_empty() && marks.is_empty());
    reducer.into_final()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{AddressSpace, Region};
    use crate::machine::Machine;
    use crate::stats::Op;

    /// Deterministic xorshift for synthetic access streams.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn drive(m: &mut Machine, seed: u64, phases: usize, accesses_per_phase: usize) -> Vec<u64> {
        let mut rng = Rng(seed | 1);
        let cores = m.cores();
        let mut phase_lens = Vec::new();
        for p in 0..phases {
            for _ in 0..accesses_per_phase {
                let r = rng.next();
                let core = (r % cores as u64) as usize;
                let actor = if r & 0x10 != 0 { Actor::Accel } else { Actor::Core };
                let region = match (r >> 8) % 4 {
                    0 => Region::VertexStates,
                    1 => Region::NeighborArray,
                    2 => Region::OffsetArray,
                    _ => Region::ActiveVertices,
                };
                let index = (r >> 16) % 4096;
                let write = (r >> 5) & 0x3 == 0;
                m.access(core, actor, region, index, write);
                if r & 0x7 == 0 {
                    m.compute(core, Actor::Core, Op::EdgeProcess, 2);
                }
            }
            let kind = if p % 2 == 0 { PhaseKind::Propagation } else { PhaseKind::Other };
            phase_lens.push(m.end_phase_synced(kind));
        }
        m.finish();
        phase_lens
    }

    fn machines_agree(exec: ExecConfig) {
        let layout = AddressSpace::layout(4096, 16384, 64);
        let cfg = SimConfig::small_test();
        let mut serial = Machine::new(cfg.clone(), layout.clone());
        let serial_phases = drive(&mut serial, 0xABCD, 5, 4000);

        let mut sharded = Machine::with_exec_config(
            cfg,
            layout,
            exec,
            &ShardPlan::uniform(serial.cores(), exec.replay_shards()),
        );
        let sharded_phases = drive(&mut sharded, 0xABCD, 5, 4000);

        assert_eq!(serial_phases, sharded_phases, "{exec:?} phase cycles diverge");
        assert_eq!(serial.stats(), sharded.stats(), "{exec:?} stats diverge");
        assert_eq!(serial.breakdown(), sharded.breakdown(), "{exec:?} breakdown diverges");
        assert_eq!(serial.total_cycles(), sharded.total_cycles());
        assert_eq!(serial.dram().total_bytes(), sharded.dram().total_bytes());
        assert_eq!(serial.dram().total_reads(), sharded.dram().total_reads());
        assert_eq!(serial.dram().total_writebacks(), sharded.dram().total_writebacks());

        let report = sharded.exec_report().expect("sharded run has a pipeline report");
        assert_eq!(report.reduce_lanes, exec.lanes());
        assert_eq!(report.encoding, exec.encoding());
        assert_eq!(report.reduce_wall.len(), exec.lanes());
        assert_eq!(report.touch_bytes_raw, 8 * report.touch_events);
        assert_eq!(report.fill_bytes, 24 * report.fill_events);
        match exec.encoding() {
            EventEncoding::Packed => {
                assert_eq!(report.touch_bytes_encoded, report.touch_bytes_raw);
            }
            EventEncoding::RunLength => {
                // 16 B runs of >= 1 touch each: never more than 2x raw.
                assert!(report.touch_bytes_encoded <= 2 * report.touch_bytes_raw);
            }
        }
    }

    #[test]
    fn sharded_one_matches_serial() {
        machines_agree(ExecConfig::serial().shards(1));
    }

    #[test]
    fn sharded_two_matches_serial() {
        machines_agree(ExecConfig::serial().shards(2));
    }

    #[test]
    fn sharded_four_matches_serial() {
        machines_agree(ExecConfig::serial().shards(4));
    }

    #[test]
    fn laned_two_matches_serial() {
        machines_agree(ExecConfig::serial().shards(4).reduce_lanes(2));
    }

    #[test]
    fn laned_four_matches_serial() {
        machines_agree(ExecConfig::serial().shards(4).reduce_lanes(4));
    }

    #[test]
    fn laned_three_nondivisor_matches_serial() {
        // 3 does not divide the 8 duel banks: lanes get uneven bank
        // shares but ownership stays exclusive.
        machines_agree(ExecConfig::serial().shards(2).reduce_lanes(3));
    }

    #[test]
    fn laned_max_matches_serial() {
        machines_agree(ExecConfig::serial().shards(2).reduce_lanes(MAX_REDUCE_LANES));
    }

    #[test]
    fn laned_single_worker_matches_serial() {
        machines_agree(ExecConfig::serial().shards(1).reduce_lanes(2));
    }

    #[test]
    fn run_length_combined_matches_serial() {
        machines_agree(ExecConfig::serial().shards(1).event_encoding(EventEncoding::RunLength));
    }

    #[test]
    fn run_length_split_matches_serial() {
        machines_agree(ExecConfig::serial().shards(4).event_encoding(EventEncoding::RunLength));
    }

    #[test]
    fn run_length_laned_matches_serial() {
        machines_agree(
            ExecConfig::serial().shards(4).reduce_lanes(4).event_encoding(EventEncoding::RunLength),
        );
    }

    #[test]
    fn sharded_handles_empty_phases_and_tail_accesses() {
        let layout = AddressSpace::layout(1024, 4096, 16);
        let cfg = SimConfig::small_test();
        let mut serial = Machine::new(cfg.clone(), layout.clone());
        let exec = ExecConfig::serial().shards(3).reduce_lanes(2);
        let plan = ShardPlan::uniform(cfg.cores, exec.replay_shards());
        let mut sharded = Machine::with_exec_config(cfg, layout, exec, &plan);
        for m in [&mut serial, &mut sharded] {
            // Empty phase first.
            let empty = m.end_phase_synced(PhaseKind::Other);
            assert_eq!(empty, 0);
            m.access(0, Actor::Core, Region::VertexStates, 0, true);
            m.access(1, Actor::Core, Region::VertexStates, 0, true);
            let p = m.end_phase_synced(PhaseKind::Propagation);
            assert!(p > 0);
            // Tail accesses never folded into a phase still count in stats.
            m.access(2, Actor::Core, Region::VertexStates, 0, false);
            m.finish();
        }
        assert_eq!(serial.stats(), sharded.stats());
        assert_eq!(serial.stats().invalidations, 1);
    }

    #[test]
    fn touch_index_matches_a_reference_map_under_churn() {
        use std::collections::HashMap;
        let mut t = TouchIndex::new(8); // 32 slots — forces probe chains
        let mut reference: HashMap<u64, u16> = HashMap::new();
        let mut rng = Rng(0x7AB1E);
        for _ in 0..20_000 {
            let r = rng.next();
            let line = (r >> 8) % 48; // dense key space → heavy collisions
            let bit = 1u16 << (r % 16);
            match r % 5 {
                0 | 1 => {
                    // Touch: OR iff resident.
                    t.or_if_present(line, bit);
                    if let Some(m) = reference.get_mut(&line) {
                        *m |= bit;
                    }
                }
                2 | 3 => {
                    // Fill: evict-if-resident then insert fresh.
                    if let Some(m) = reference.remove(&line) {
                        assert_eq!(t.remove(line), m);
                    }
                    if reference.len() < 24 {
                        t.insert(line, bit);
                        reference.insert(line, bit);
                    }
                }
                _ => {
                    if let Some(m) = reference.remove(&line) {
                        assert_eq!(t.remove(line), m);
                    }
                }
            }
        }
        for (&line, &m) in &reference {
            assert_eq!(t.get(line), m);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn exec_mode_labels_and_shards() {
        assert_eq!(ExecMode::Serial.label(), "serial");
        assert_eq!(ExecMode::Sharded(4).label(), "sharded4");
        assert_eq!(ExecMode::Serial.replay_shards(), 0);
        assert_eq!(ExecMode::Sharded(1).replay_shards(), 1);
        assert_eq!(ExecMode::Sharded(2).replay_shards(), 1);
        assert_eq!(ExecMode::Sharded(4).replay_shards(), 3);
        assert!(ExecMode::Sharded(1).is_sharded());
        assert!(!ExecMode::Serial.is_sharded());
    }

    #[test]
    #[allow(deprecated)]
    fn exec_config_builder_labels_and_conversion() {
        assert_eq!(ExecConfig::serial().label(), "serial");
        assert_eq!(ExecConfig::default(), ExecConfig::serial());
        assert_eq!(ExecConfig::serial().shards(4).label(), "sharded4");
        assert_eq!(ExecConfig::serial().shards(4).reduce_lanes(2).label(), "sharded4x2");
        assert_eq!(
            ExecConfig::serial()
                .shards(4)
                .reduce_lanes(2)
                .event_encoding(EventEncoding::RunLength)
                .label(),
            "sharded4x2-rle"
        );
        assert_eq!(
            ExecConfig::serial().shards(1).event_encoding(EventEncoding::RunLength).label(),
            "sharded1-rle"
        );
        // Lane/encoding knobs never change a serial label.
        assert_eq!(ExecConfig::serial().reduce_lanes(4).label(), "serial");
        assert_eq!(ExecConfig::serial().replay_shards(), 0);
        assert_eq!(ExecConfig::serial().shards(1).replay_shards(), 1);
        assert_eq!(ExecConfig::serial().shards(4).replay_shards(), 3);
        assert!(ExecConfig::serial().shards(1).is_sharded());
        assert!(!ExecConfig::serial().is_sharded());
        // `shards(0)` collapses to serial, matching `From<ExecMode>`.
        assert!(!ExecConfig::serial().shards(0).is_sharded());
        assert_eq!(ExecConfig::from(ExecMode::Serial), ExecConfig::serial());
        assert_eq!(ExecConfig::from(ExecMode::Sharded(4)), ExecConfig::serial().shards(4));
        assert_eq!(ExecConfig::from(ExecMode::Sharded(0)), ExecConfig::serial().shards(0));
        assert!(ExecConfig::serial().validate().is_ok());
        assert!(ExecConfig::serial().reduce_lanes(0).validate().is_err());
        assert!(ExecConfig::serial().reduce_lanes(MAX_REDUCE_LANES + 1).validate().is_err());
    }

    #[test]
    fn touch_run_is_16_bytes_on_the_wire() {
        assert_eq!(std::mem::size_of::<TouchRun>(), 16);
    }

    #[test]
    fn run_length_encoder_collapses_consecutive_same_line_touches() {
        let stream = [
            (0, 0, 7u64),
            (1, 1, 7),
            (2, 2, 7),
            // rel gap (a fill consumed rel 3): run must break.
            (4, 3, 7),
            // line change: run must break.
            (5, 0, 9),
            (6, 0, 9),
        ];
        let runs = encode_touch_runs(&stream);
        assert_eq!(
            runs,
            vec![
                TouchRun { line: 7, rel: 0, len: 3, mask: 0b111 },
                TouchRun { line: 7, rel: 4, len: 1, mask: 0b1000 },
                TouchRun { line: 9, rel: 5, len: 2, mask: 0b1 },
            ]
        );
        let decoded = decode_touch_runs(&runs);
        assert_eq!(decoded.len(), stream.len());
        for ((rel, word, line), &(drel, dline, dmask)) in stream.iter().zip(&decoded) {
            assert_eq!(*rel, drel);
            assert_eq!(*line, dline);
            assert_ne!(dmask & (1 << word), 0, "member word must be in the run mask");
        }
    }

    #[test]
    fn lane_partition_is_total_and_bank_exclusive() {
        let sets = 256;
        for lanes in 1..=MAX_REDUCE_LANES {
            for line in 0..4096u64 {
                let lane = lane_of_line(line, sets, lanes);
                assert!(lane < lanes);
                // Lane ownership is a pure function of the duel bank.
                let bank = (line % sets as u64) as usize % crate::cache::DUEL_BANKS;
                assert_eq!(lane, bank % lanes);
            }
        }
    }

    #[test]
    fn shard_telemetry_totals_are_thread_count_independent() {
        let layout = AddressSpace::layout(4096, 16384, 64);
        let cfg = SimConfig::small_test();
        let mut snaps = Vec::new();
        for exec in [
            ExecConfig::serial().shards(1),
            ExecConfig::serial().shards(2),
            ExecConfig::serial().shards(4),
            ExecConfig::serial().shards(4).reduce_lanes(4),
        ] {
            let plan = ShardPlan::uniform(cfg.cores, exec.replay_shards());
            let mut m = Machine::with_exec_config(cfg.clone(), layout.clone(), exec, &plan);
            drive(&mut m, 0x5EED, 3, 2000);
            snaps.push(m.shard_telemetry().expect("sharded run has telemetry").clone());
        }
        assert_eq!(snaps[0], snaps[1]);
        assert_eq!(snaps[1], snaps[2]);
        assert_eq!(snaps[2], snaps[3], "lane count must not change telemetry totals");
    }

    #[test]
    fn run_length_telemetry_is_shard_grouping_independent() {
        // Encoded byte totals must not depend on how cores are grouped
        // into shards (runs flush at core boundaries).
        let layout = AddressSpace::layout(4096, 16384, 64);
        let cfg = SimConfig::small_test();
        let mut totals = Vec::new();
        for exec in [
            ExecConfig::serial().shards(1).event_encoding(EventEncoding::RunLength),
            ExecConfig::serial().shards(3).event_encoding(EventEncoding::RunLength),
            ExecConfig::serial().shards(5).event_encoding(EventEncoding::RunLength),
        ] {
            let plan = ShardPlan::uniform(cfg.cores, exec.replay_shards());
            let mut m = Machine::with_exec_config(cfg.clone(), layout.clone(), exec, &plan);
            drive(&mut m, 0xF00D, 3, 2000);
            let report = m.exec_report().expect("sharded run has a pipeline report");
            totals.push((report.touch_events, report.touch_bytes_encoded));
        }
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[1], totals[2]);
    }
}
