//! Machine-level statistics collected during simulation.

use crate::address::Region;

/// Algorithmic operations charged to a timeline (see
/// [`crate::config::InstrCost`] for the per-op core costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Process one edge.
    EdgeProcess,
    /// Commit one vertex-state update.
    StateUpdate,
    /// Push/pop one frontier or worklist entry.
    FrontierOp,
    /// One hash-table probe.
    HashProbe,
    /// Per-vertex scheduling overhead.
    ScheduleOp,
    /// Data-dependent branch misprediction penalty.
    BranchMiss,
}

impl Op {
    /// All operation kinds.
    pub const ALL: [Op; 6] = [
        Op::EdgeProcess,
        Op::StateUpdate,
        Op::FrontierOp,
        Op::HashProbe,
        Op::ScheduleOp,
        Op::BranchMiss,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            Op::EdgeProcess => 0,
            Op::StateUpdate => 1,
            Op::FrontierOp => 2,
            Op::HashProbe => 3,
            Op::ScheduleOp => 4,
            Op::BranchMiss => 5,
        }
    }
}

/// Who issues an access or operation: a general-purpose core or an
/// accelerator engine paired with it. The two run concurrently; at phase
/// boundaries each core's time is the max of the two timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Actor {
    /// The software thread on the core.
    Core,
    /// The per-core accelerator engine (TDTU/VSCU or a comparator model).
    Accel,
}

/// Phase classification for the execution-time breakdown (Fig 3a / Fig 10
/// split "state propagation" from "other").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Propagating new states along the topology.
    Propagation,
    /// Everything else (batch application, tracking, scheduling, indexing).
    Other,
}

/// Word-utilization accumulator for state-region cache lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineUtilization {
    /// State-region lines evicted (or flushed) from the LLC.
    pub lines: u64,
    /// Total 4 B words touched in those lines while resident.
    pub touched_words: u64,
}

impl LineUtilization {
    /// Records one evicted line with `touched` words used.
    pub fn record(&mut self, touched: u32) {
        self.lines += 1;
        self.touched_words += u64::from(touched);
    }

    /// Fraction of fetched state words that were actually used (Fig 3c /
    /// Fig 12). Returns 1.0 when nothing was fetched.
    #[must_use]
    pub fn useful_ratio(&self) -> f64 {
        if self.lines == 0 {
            1.0
        } else {
            self.touched_words as f64 / (self.lines as f64 * 16.0)
        }
    }
}

/// Aggregate machine statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineStats {
    /// L1D hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that hit L2).
    pub l2_hits: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses (DRAM line reads).
    pub llc_misses: u64,
    /// Total accesses issued.
    pub accesses: u64,
    /// NoC hop·cycles spent on LLC round trips and invalidations.
    pub noc_hop_cycles: u64,
    /// Coherence invalidations of remote private-cache lines.
    pub invalidations: u64,
    /// Utilization of vertex-state lines through the LLC.
    pub state_lines: LineUtilization,
    /// Per-op counts, indexed in [`Op::ALL`] order.
    pub op_counts: [u64; 6],
    /// Accesses per region (indexed by position in [`Region::ALL`]).
    pub region_accesses: [u64; 12],
}

impl MachineStats {
    /// LLC miss rate over LLC lookups.
    #[must_use]
    pub fn llc_miss_rate(&self) -> f64 {
        let lookups = self.llc_hits + self.llc_misses;
        if lookups == 0 {
            0.0
        } else {
            self.llc_misses as f64 / lookups as f64
        }
    }

    /// Records an access to `region` for the per-region histogram.
    pub fn count_region(&mut self, region: Region) {
        let idx = Region::ALL.iter().position(|&r| r == region).expect("region in ALL");
        self.region_accesses[idx] += 1;
    }

    /// Accesses recorded for `region`.
    #[must_use]
    pub fn region_access_count(&self, region: Region) -> u64 {
        let idx = Region::ALL.iter().position(|&r| r == region).expect("region in ALL");
        self.region_accesses[idx]
    }

    /// Count of operation `op`.
    #[must_use]
    pub fn op_count(&self, op: Op) -> u64 {
        self.op_counts[op.index()]
    }
}

/// Per-phase and total time accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Cycles in propagation phases.
    pub propagation_cycles: u64,
    /// Cycles in other phases.
    pub other_cycles: u64,
}

impl TimeBreakdown {
    /// Total cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.propagation_cycles + self.other_cycles
    }

    /// Adds a finished phase.
    pub fn add(&mut self, kind: PhaseKind, cycles: u64) {
        match kind {
            PhaseKind::Propagation => self.propagation_cycles += cycles,
            PhaseKind::Other => self.other_cycles += cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_ratio() {
        let mut u = LineUtilization::default();
        assert_eq!(u.useful_ratio(), 1.0);
        u.record(16);
        u.record(0);
        assert!((u.useful_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn llc_miss_rate_handles_zero() {
        let s = MachineStats::default();
        assert_eq!(s.llc_miss_rate(), 0.0);
    }

    #[test]
    fn region_histogram_roundtrip() {
        let mut s = MachineStats::default();
        s.count_region(Region::VertexStates);
        s.count_region(Region::VertexStates);
        assert_eq!(s.region_access_count(Region::VertexStates), 2);
        assert_eq!(s.region_access_count(Region::OffsetArray), 0);
    }

    #[test]
    fn breakdown_accumulates_by_kind() {
        let mut b = TimeBreakdown::default();
        b.add(PhaseKind::Propagation, 100);
        b.add(PhaseKind::Other, 50);
        b.add(PhaseKind::Propagation, 10);
        assert_eq!(b.propagation_cycles, 110);
        assert_eq!(b.other_cycles, 50);
        assert_eq!(b.total(), 160);
    }

    #[test]
    fn op_indexing_is_stable() {
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }
}
