//! Machine-level statistics collected during simulation.
//!
//! [`MachineStats`] is the dense hot-path accumulator the [`crate::Machine`]
//! writes into on every access; at the end of a run it exports into the
//! unified observability layer ([`MachineStats::export_into`]) and can be
//! reconstructed from a snapshot ([`MachineStats::from_snapshot`]), so the
//! `sim.*` keys in an obs [`Snapshot`] are a lossless view of it.

use tdgraph_obs::{keys, Recorder, Snapshot};

use crate::address::Region;

/// Defines [`Op`] once: the variant list drives the enum, `ALL`, the
/// derived discriminant index, and the obs counter key, so adding an op is
/// a one-line change with no positional match to keep in sync.
macro_rules! define_ops {
    ($($(#[$meta:meta])* $name:ident => $key:literal,)+) => {
        /// Algorithmic operations charged to a timeline (see
        /// [`crate::config::InstrCost`] for the per-op core costs).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Op {
            $($(#[$meta])* $name,)+
        }

        impl Op {
            /// All operation kinds, in discriminant order.
            pub const ALL: [Op; Op::COUNT] = [$(Op::$name,)+];

            /// Number of operation kinds.
            pub const COUNT: usize = [$(Op::$name,)+].len();

            /// Index into per-op tables: the derived discriminant, so it
            /// can never drift from the variant order.
            #[must_use]
            pub const fn index(self) -> usize {
                self as usize
            }

            /// The observability counter key (starts with
            /// [`keys::OP_PREFIX`]).
            #[must_use]
            pub const fn obs_key(self) -> &'static str {
                match self {
                    $(Op::$name => $key,)+
                }
            }
        }
    };
}

define_ops! {
    /// Process one edge.
    EdgeProcess => "sim.op.edge_process",
    /// Commit one vertex-state update.
    StateUpdate => "sim.op.state_update",
    /// Push/pop one frontier or worklist entry.
    FrontierOp => "sim.op.frontier_op",
    /// One hash-table probe.
    HashProbe => "sim.op.hash_probe",
    /// Per-vertex scheduling overhead.
    ScheduleOp => "sim.op.schedule_op",
    /// Data-dependent branch misprediction penalty.
    BranchMiss => "sim.op.branch_miss",
}

/// Who issues an access or operation: a general-purpose core or an
/// accelerator engine paired with it. The two run concurrently; at phase
/// boundaries each core's time is the max of the two timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Actor {
    /// The software thread on the core.
    Core,
    /// The per-core accelerator engine (TDTU/VSCU or a comparator model).
    Accel,
}

/// Phase classification for the execution-time breakdown (Fig 3a / Fig 10
/// split "state propagation" from "other").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Propagating new states along the topology.
    Propagation,
    /// Everything else (batch application, tracking, scheduling, indexing).
    Other,
}

impl PhaseKind {
    /// The span name this phase records under in the observability layer.
    #[must_use]
    pub const fn obs_name(self) -> &'static str {
        match self {
            PhaseKind::Propagation => keys::PHASE_PROPAGATION,
            PhaseKind::Other => keys::PHASE_OTHER,
        }
    }
}

/// Word-utilization accumulator for state-region cache lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineUtilization {
    /// State-region lines evicted (or flushed) from the LLC.
    pub lines: u64,
    /// Total 4 B words touched in those lines while resident.
    pub touched_words: u64,
}

impl LineUtilization {
    /// Records one evicted line with `touched` words used.
    pub fn record(&mut self, touched: u32) {
        self.lines += 1;
        self.touched_words += u64::from(touched);
    }

    /// Fraction of fetched state words that were actually used (Fig 3c /
    /// Fig 12). Returns 1.0 when nothing was fetched.
    #[must_use]
    pub fn useful_ratio(&self) -> f64 {
        if self.lines == 0 {
            1.0
        } else {
            self.touched_words as f64 / (self.lines as f64 * 16.0)
        }
    }
}

/// Aggregate machine statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineStats {
    /// L1D hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that hit L2).
    pub l2_hits: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses (DRAM line reads).
    pub llc_misses: u64,
    /// Total accesses issued.
    pub accesses: u64,
    /// NoC hop·cycles spent on LLC round trips and invalidations.
    pub noc_hop_cycles: u64,
    /// Coherence invalidations of remote private-cache lines.
    pub invalidations: u64,
    /// Utilization of vertex-state lines through the LLC.
    pub state_lines: LineUtilization,
    /// Per-op counts, indexed by [`Op::index`].
    pub op_counts: [u64; Op::COUNT],
    /// Accesses per region, indexed by [`Region::index`].
    pub region_accesses: [u64; Region::COUNT],
}

impl MachineStats {
    /// LLC miss rate over LLC lookups.
    #[must_use]
    pub fn llc_miss_rate(&self) -> f64 {
        let lookups = self.llc_hits + self.llc_misses;
        if lookups == 0 {
            0.0
        } else {
            self.llc_misses as f64 / lookups as f64
        }
    }

    /// Records an access to `region` for the per-region histogram.
    pub fn count_region(&mut self, region: Region) {
        self.region_accesses[region.index()] += 1;
    }

    /// Count of operation `op`.
    #[must_use]
    pub fn per_op(&self, op: Op) -> u64 {
        self.op_counts[op.index()]
    }

    /// Accesses recorded for `region`.
    #[must_use]
    pub fn per_region(&self, region: Region) -> u64 {
        self.region_accesses[region.index()]
    }

    /// Total accesses issued (alias for the `accesses` field under the
    /// `total_*` accessor convention).
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.accesses
    }

    /// Total algorithmic operations across all kinds.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.op_counts.iter().sum()
    }

    /// Exports every statistic into the observability layer under the
    /// `sim.*` key namespace. [`MachineStats::from_snapshot`] inverts this.
    pub fn export_into(&self, rec: &mut dyn Recorder) {
        rec.counter(keys::L1_HITS, self.l1_hits);
        rec.counter(keys::L2_HITS, self.l2_hits);
        rec.counter(keys::LLC_HITS, self.llc_hits);
        rec.counter(keys::LLC_MISSES, self.llc_misses);
        rec.counter(keys::ACCESSES, self.accesses);
        rec.counter(keys::NOC_HOP_CYCLES, self.noc_hop_cycles);
        rec.counter(keys::INVALIDATIONS, self.invalidations);
        rec.counter(keys::STATE_LINES, self.state_lines.lines);
        rec.counter(keys::STATE_WORDS_TOUCHED, self.state_lines.touched_words);
        for op in Op::ALL {
            rec.counter(op.obs_key(), self.per_op(op));
        }
        for region in Region::ALL {
            rec.counter(region.obs_key(), self.per_region(region));
        }
    }

    /// Reconstructs the statistics from the `sim.*` counters of a
    /// snapshot. Keys a run never emitted read back as zero.
    #[must_use]
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut op_counts = [0u64; Op::COUNT];
        for op in Op::ALL {
            op_counts[op.index()] = snapshot.counter(op.obs_key());
        }
        let mut region_accesses = [0u64; Region::COUNT];
        for region in Region::ALL {
            region_accesses[region.index()] = snapshot.counter(region.obs_key());
        }
        Self {
            l1_hits: snapshot.counter(keys::L1_HITS),
            l2_hits: snapshot.counter(keys::L2_HITS),
            llc_hits: snapshot.counter(keys::LLC_HITS),
            llc_misses: snapshot.counter(keys::LLC_MISSES),
            accesses: snapshot.counter(keys::ACCESSES),
            noc_hop_cycles: snapshot.counter(keys::NOC_HOP_CYCLES),
            invalidations: snapshot.counter(keys::INVALIDATIONS),
            state_lines: LineUtilization {
                lines: snapshot.counter(keys::STATE_LINES),
                touched_words: snapshot.counter(keys::STATE_WORDS_TOUCHED),
            },
            op_counts,
            region_accesses,
        }
    }
}

/// Per-phase and total time accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Cycles in propagation phases.
    pub propagation_cycles: u64,
    /// Cycles in other phases.
    pub other_cycles: u64,
}

impl TimeBreakdown {
    /// Total cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.propagation_cycles + self.other_cycles
    }

    /// Adds a finished phase.
    pub fn add(&mut self, kind: PhaseKind, cycles: u64) {
        match kind {
            PhaseKind::Propagation => self.propagation_cycles += cycles,
            PhaseKind::Other => self.other_cycles += cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_obs::MemoryRecorder;

    #[test]
    fn utilization_ratio() {
        let mut u = LineUtilization::default();
        assert_eq!(u.useful_ratio(), 1.0);
        u.record(16);
        u.record(0);
        assert!((u.useful_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn llc_miss_rate_handles_zero() {
        let s = MachineStats::default();
        assert_eq!(s.llc_miss_rate(), 0.0);
    }

    #[test]
    fn region_histogram_roundtrip() {
        let mut s = MachineStats::default();
        s.count_region(Region::VertexStates);
        s.count_region(Region::VertexStates);
        assert_eq!(s.per_region(Region::VertexStates), 2);
        assert_eq!(s.per_region(Region::OffsetArray), 0);
    }

    #[test]
    fn breakdown_accumulates_by_kind() {
        let mut b = TimeBreakdown::default();
        b.add(PhaseKind::Propagation, 100);
        b.add(PhaseKind::Other, 50);
        b.add(PhaseKind::Propagation, 10);
        assert_eq!(b.propagation_cycles, 110);
        assert_eq!(b.other_cycles, 50);
        assert_eq!(b.total(), 160);
    }

    #[test]
    fn op_index_is_the_discriminant() {
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        assert_eq!(Op::COUNT, Op::ALL.len());
    }

    #[test]
    fn op_obs_keys_are_prefixed_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for op in Op::ALL {
            assert!(op.obs_key().starts_with(keys::OP_PREFIX), "{:?}", op);
            assert!(seen.insert(op.obs_key()), "duplicate key for {op:?}");
        }
    }

    #[test]
    fn per_op_and_per_region_answer() {
        let mut s = MachineStats::default();
        s.op_counts[Op::HashProbe.index()] = 7;
        s.count_region(Region::Frontier);
        assert_eq!(s.per_op(Op::HashProbe), 7);
        assert_eq!(s.per_region(Region::Frontier), 1);
        assert_eq!(s.total_ops(), 7);
    }

    #[test]
    fn export_import_roundtrips() {
        let mut s = MachineStats {
            l1_hits: 10,
            l2_hits: 4,
            llc_hits: 3,
            llc_misses: 2,
            accesses: 19,
            noc_hop_cycles: 55,
            invalidations: 1,
            ..Default::default()
        };
        s.state_lines.record(12);
        s.op_counts[Op::EdgeProcess.index()] = 100;
        s.count_region(Region::NeighborArray);

        let mut rec = MemoryRecorder::new();
        s.export_into(&mut rec);
        let restored = MachineStats::from_snapshot(&rec.into_snapshot());
        assert_eq!(restored, s);
    }
}
