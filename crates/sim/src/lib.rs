//! Trace-driven many-core timing simulator for the TDGraph reproduction.
//!
//! This crate replaces the paper's ZSim + McPAT stack (§4.1, Table 1) with a
//! deterministic cost-model simulator:
//!
//! * [`config::SimConfig`] — the Table 1 machine description,
//! * [`address::AddressSpace`] — virtual layout of the paper's in-memory
//!   arrays (`Offset_Array`, `Neighbor_Array`, `Vertex_States_Array`,
//!   `Topology_List`, `Coalesced_States`, `H_Table`, bitvectors),
//! * [`cache`] / [`policy`] — set-associative caches with LRU, DRRIP,
//!   GRASP, and P-OPT replacement and per-line word-utilization tracking,
//! * [`noc::Mesh`] — 8×8 X-Y-routed mesh with address-hashed LLC banks,
//! * [`memory::DramModel`] — DDR4-3200 latency plus a bandwidth envelope,
//! * [`machine::Machine`] — the assembled processor: typed accesses walk
//!   L1 → L2 → NoC → LLC → DRAM, coherence invalidations are modeled via a
//!   directory, and time is accounted per core with separate core and
//!   accelerator timelines,
//! * [`exec`] — host-parallel sharded execution behind one
//!   [`exec::ExecConfig`]: accesses recorded on the driving thread are
//!   replayed on worker threads and merged either by one sequential
//!   reducer or by key-range-partitioned reducer lanes (with optional
//!   run-length boundary-event encoding), byte-identical to the serial
//!   walk in every configuration,
//! * [`energy`] — per-event energy constants producing the Fig 19
//!   component breakdown,
//! * [`trace`] — an optional bounded access trace for model inspection.
//!
//! # Example
//!
//! ```
//! use tdgraph_sim::address::{AddressSpace, Region};
//! use tdgraph_sim::config::SimConfig;
//! use tdgraph_sim::machine::Machine;
//! use tdgraph_sim::stats::{Actor, PhaseKind};
//!
//! let layout = AddressSpace::layout(1024, 4096, 16);
//! let mut machine = Machine::new(SimConfig::small_test(), layout);
//! machine.access(0, Actor::Core, Region::VertexStates, 7, false);
//! let cycles = machine.end_phase(PhaseKind::Propagation);
//! assert!(cycles > 0);
//! ```

pub mod address;
pub mod cache;
pub mod config;
pub mod energy;
pub mod error;
pub mod exec;
pub mod machine;
pub mod memory;
pub mod noc;
pub mod policy;
pub mod stats;
pub mod trace;

pub use address::{AddressSpace, Region};
pub use config::SimConfig;
pub use error::SimError;
#[allow(deprecated)]
pub use exec::ExecMode;
pub use exec::{
    decode_touch_runs, encode_touch_runs, EventEncoding, ExecConfig, ExecPipelineReport, TouchRun,
    MAX_REDUCE_LANES,
};
pub use machine::Machine;
pub use stats::{Actor, Op, PhaseKind};
