//! Typed errors for the simulator crate.
//!
//! [`SimError`] makes machine-configuration problems data instead of
//! aborts: the harness validates a [`SimConfig`](crate::config::SimConfig)
//! up front and reports an invalid machine as a per-cell failure rather
//! than panicking a sweep worker.

use std::error::Error;
use std::fmt;

/// Error produced by the simulator layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A machine configuration is internally inconsistent.
    InvalidConfig {
        /// The offending field or relation.
        field: &'static str,
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid machine configuration ({field}): {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = SimError::InvalidConfig { field: "mesh_dim", reason: "too small".into() };
        assert!(e.to_string().contains("mesh_dim"));
        assert!(e.to_string().contains("too small"));
    }
}
