//! Set-associative cache model with per-line word-utilization tracking.
//!
//! Beyond hit/miss simulation, every line remembers which 4 B words were
//! touched while resident; on eviction the popcount feeds the
//! useful-fetched-data metric of Fig 3(c)/Fig 12 ("most vertex states
//! fetched into the LLC are not used before they are swapped out").

use crate::address::Region;
use crate::policy::PolicyKind;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// A line evicted to make room (only on misses in full sets).
    pub evicted: Option<EvictedLine>,
}

/// A line pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line address (byte address >> 6).
    pub line: u64,
    /// Whether it was written while resident.
    pub dirty: bool,
    /// Region of its contents.
    pub region: Region,
    /// How many of its 16 words were touched while resident.
    pub touched_words: u32,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    meta: u32,
    touched: u16,
    region: Region,
}

const INVALID: Line =
    Line { tag: 0, valid: false, dirty: false, meta: 0, touched: 0, region: Region::VertexStates };

/// Number of independent DRRIP duel domains ("banks"). Set `s` belongs to
/// bank `s % DUEL_BANKS`; each bank owns its own leader sets, PSEL, and
/// BRRIP tick. The LLC is banked over the mesh, and real banked designs
/// duel per bank rather than sharing one selector across the chip — and
/// bank-local duel state is also what lets the sharded reduction partition
/// LLC state into independent lanes at bank granularity (see
/// `exec::lane_of_line`): events in different banks never read or write
/// shared replacement state, so per-lane serial order reproduces global
/// serial order exactly.
pub(crate) const DUEL_BANKS: usize = 8;

/// DRRIP set-dueling state (Jaleel et al., ISCA'10), one per bank: a few
/// leader sets are dedicated to SRRIP and BRRIP insertion; misses in
/// leader sets steer a saturating selector that the bank's follower sets
/// obey.
#[derive(Debug, Clone, Copy)]
struct DuelState {
    /// Positive → SRRIP is missing more → followers use BRRIP.
    psel: i32,
    /// Deterministic 1-in-32 counter for BRRIP's rare near insertions.
    brip_tick: u32,
}

impl DuelState {
    const PSEL_MAX: i32 = 512;
    const LEADER_STRIDE: usize = 32;

    fn new() -> Self {
        Self { psel: 0, brip_tick: 0 }
    }

    /// Which insertion policy governs `set`: Some(true)=SRRIP leader,
    /// Some(false)=BRRIP leader, None=follower. Leaders are chosen per
    /// bank: the first set of each bank stripe is its SRRIP leader, the
    /// second its BRRIP leader, repeating every `LEADER_STRIDE` stripes.
    fn leader(set: usize) -> Option<bool> {
        match (set / DUEL_BANKS) % Self::LEADER_STRIDE {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        }
    }

    fn on_miss(&mut self, set: usize) {
        match Self::leader(set) {
            Some(true) => self.psel = (self.psel + 1).min(Self::PSEL_MAX),
            Some(false) => self.psel = (self.psel - 1).max(-Self::PSEL_MAX),
            None => {}
        }
    }

    /// RRPV for a new line in `set`.
    fn insert_rrpv(&mut self, set: usize) -> u32 {
        let use_brrip = match Self::leader(set) {
            Some(true) => false,
            Some(false) => true,
            None => self.psel > 0,
        };
        if use_brrip {
            self.brip_tick = self.brip_tick.wrapping_add(1);
            if self.brip_tick.is_multiple_of(32) {
                2
            } else {
                3
            }
        } else {
            2
        }
    }
}

/// A set-associative cache with 64 B lines.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Line>,
    set_count: usize,
    ways: usize,
    policy: PolicyKind,
    stamp: u32,
    duel: [DuelState; DUEL_BANKS],
}

impl SetAssocCache {
    /// Creates a cache with `set_count` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(set_count: usize, ways: usize, policy: PolicyKind) -> Self {
        assert!(set_count > 0 && ways > 0, "cache needs sets and ways");
        Self {
            sets: vec![INVALID; set_count * ways],
            set_count,
            ways,
            policy,
            stamp: 0,
            duel: [DuelState::new(); DUEL_BANKS],
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.set_count
    }

    fn slice(&mut self, set: usize) -> &mut [Line] {
        &mut self.sets[set * self.ways..(set + 1) * self.ways]
    }

    /// Accesses `line` (byte address >> 6), touching 4 B word `word`
    /// (0..16). On a miss the line is filled (allocate-on-miss for reads
    /// and writes) and the displaced line, if any, is reported.
    pub fn access(&mut self, line: u64, word: u8, write: bool, region: Region) -> AccessOutcome {
        debug_assert!(word < 16);
        self.stamp = self.stamp.wrapping_add(1);
        let stamp = self.stamp;
        let policy = self.policy;
        let set = self.set_of(line);
        {
            let ways = self.slice(set);
            if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == line) {
                l.meta = policy.hit_meta(region, l.meta, stamp);
                l.touched |= 1 << word;
                l.dirty |= write;
                return AccessOutcome { hit: true, evicted: None };
            }
        }
        if policy == PolicyKind::Drrip {
            self.duel[set % DUEL_BANKS].on_miss(set);
        }

        // Miss: steer the DRRIP duel, then pick a way.
        let ways = self.slice(set);
        let (victim_idx, evicted) = if let Some(i) = ways.iter().position(|l| !l.valid) {
            (i, None)
        } else {
            // Victim selection mutates replacement metadata (RRPV aging);
            // stage it on the stack — this runs on every capacity miss,
            // so a heap allocation here dominates the access path.
            let n = ways.len();
            let mut stack = [0u32; 64];
            let mut heap: Vec<u32> = Vec::new();
            let metas: &mut [u32] = if n <= 64 {
                let m = &mut stack[..n];
                for (dst, l) in m.iter_mut().zip(ways.iter()) {
                    *dst = l.meta;
                }
                m
            } else {
                heap.extend(ways.iter().map(|l| l.meta));
                &mut heap
            };
            let v = policy.choose_victim(metas);
            for (l, &m) in ways.iter_mut().zip(metas.iter()) {
                l.meta = m;
            }
            let out = ways[v];
            (
                v,
                Some(EvictedLine {
                    line: out.tag,
                    dirty: out.dirty,
                    region: out.region,
                    touched_words: out.touched.count_ones(),
                }),
            )
        };
        let meta = if policy == PolicyKind::Drrip {
            self.duel[set % DUEL_BANKS].insert_rrpv(set)
        } else {
            policy.insert_meta(region, stamp)
        };
        let ways = self.slice(set);
        ways[victim_idx] =
            Line { tag: line, valid: true, dirty: write, meta, touched: 1 << word, region };
        AccessOutcome { hit: false, evicted }
    }

    /// Whether `line` is resident.
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        self.sets[set * self.ways..(set + 1) * self.ways].iter().any(|l| l.valid && l.tag == line)
    }

    /// Marks an additional touched word on a resident line (used by the
    /// machine to propagate word-usage info to the LLC copy even when an
    /// upper level satisfied the access). No replacement state changes.
    pub fn touch_word(&mut self, line: u64, word: u8) {
        let set = self.set_of(line);
        let ways = self.slice(set);
        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == line) {
            l.touched |= 1 << word;
        }
    }

    /// Crate-internal: overwrites each resident line's touched-word mask
    /// from an external authoritative source. The sharded reduction pass
    /// tracks masks in a compact side index and syncs them back here at
    /// finalization so the end-of-run flush reports the serial state.
    pub(crate) fn sync_touched(&mut self, mut mask_of: impl FnMut(u64) -> u16) {
        for l in &mut self.sets {
            if l.valid {
                l.touched = mask_of(l.tag);
            }
        }
    }

    /// Crate-internal: copies every set `s` with `owned(s)` true — lines
    /// and replacement metadata — from `other` into this cache. The
    /// multi-lane reduction runs each lane against its own clone of the
    /// LLC (touching only the sets its lane owns) and reassembles the
    /// serial cache here at finalization.
    ///
    /// # Panics
    ///
    /// Panics if the two caches have different geometry.
    pub(crate) fn adopt_sets(&mut self, other: &SetAssocCache, owned: impl Fn(usize) -> bool) {
        assert_eq!(self.set_count, other.set_count, "adopt_sets needs identical geometry");
        assert_eq!(self.ways, other.ways, "adopt_sets needs identical geometry");
        for set in 0..self.set_count {
            if owned(set) {
                let range = set * self.ways..(set + 1) * self.ways;
                self.sets[range.clone()].copy_from_slice(&other.sets[range]);
            }
        }
    }

    /// Invalidates `line` if present; returns the line's eviction record.
    pub fn invalidate(&mut self, line: u64) -> Option<EvictedLine> {
        let set = self.set_of(line);
        let ways = self.slice(set);
        let l = ways.iter_mut().find(|l| l.valid && l.tag == line)?;
        let out = EvictedLine {
            line: l.tag,
            dirty: l.dirty,
            region: l.region,
            touched_words: l.touched.count_ones(),
        };
        *l = INVALID;
        Some(out)
    }

    /// Drains every valid line, reporting each as evicted (end-of-run flush
    /// so utilization statistics account for resident lines).
    pub fn flush(&mut self) -> Vec<EvictedLine> {
        let mut out = Vec::new();
        for l in &mut self.sets {
            if l.valid {
                out.push(EvictedLine {
                    line: l.tag,
                    dirty: l.dirty,
                    region: l.region,
                    touched_words: l.touched.count_ones(),
                });
                *l = INVALID;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(2, 2, PolicyKind::Lru)
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(100, 0, false, Region::VertexStates).hit);
        assert!(c.access(100, 1, false, Region::VertexStates).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers, 2 sets).
        c.access(0, 0, false, Region::VertexStates);
        c.access(2, 0, false, Region::VertexStates);
        c.access(0, 0, false, Region::VertexStates); // refresh line 0
        let out = c.access(4, 0, false, Region::VertexStates);
        assert!(!out.hit);
        assert_eq!(out.evicted.unwrap().line, 2);
        assert!(c.contains(0) && c.contains(4) && !c.contains(2));
    }

    #[test]
    fn touched_words_accumulate_until_eviction() {
        let mut c = tiny();
        c.access(0, 0, false, Region::VertexStates);
        c.access(0, 5, false, Region::VertexStates);
        c.access(0, 5, false, Region::VertexStates); // same word twice
        c.access(2, 0, false, Region::VertexStates);
        let out = c.access(4, 0, false, Region::VertexStates);
        let ev = out.evicted.unwrap();
        assert_eq!(ev.line, 0);
        assert_eq!(ev.touched_words, 2);
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = tiny();
        c.access(0, 0, true, Region::VertexStates);
        c.access(2, 0, false, Region::VertexStates);
        let ev = c.access(4, 0, false, Region::VertexStates).evicted.unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(0, 3, true, Region::TopologyList);
        let ev = c.invalidate(0).unwrap();
        assert_eq!(ev.region, Region::TopologyList);
        assert!(ev.dirty);
        assert!(!c.contains(0));
        assert!(c.invalidate(0).is_none());
    }

    #[test]
    fn flush_reports_all_resident_lines() {
        let mut c = tiny();
        c.access(0, 0, false, Region::VertexStates);
        c.access(1, 0, false, Region::NeighborArray);
        let mut flushed = c.flush();
        flushed.sort_by_key(|e| e.line);
        assert_eq!(flushed.len(), 2);
        assert!(!c.contains(0) && !c.contains(1));
        assert!(c.flush().is_empty());
    }

    #[test]
    fn touch_word_marks_without_replacement_side_effects() {
        let mut c = tiny();
        c.access(0, 0, false, Region::VertexStates);
        c.touch_word(0, 9);
        c.access(2, 0, false, Region::VertexStates);
        let ev = c.access(4, 0, false, Region::VertexStates).evicted.unwrap();
        assert_eq!(ev.touched_words, 2);
    }

    #[test]
    fn grasp_cache_protects_coalesced_lines() {
        // 1 set, 2 ways: hot line inserted at RRPV 0 survives a scan.
        let mut c = SetAssocCache::new(1, 2, PolicyKind::Grasp);
        c.access(10, 0, false, Region::CoalescedStates);
        for line in 0..8u64 {
            c.access(line, 0, false, Region::NeighborArray);
        }
        assert!(c.contains(10), "GRASP failed to protect the hot line");
    }

    #[test]
    fn popt_cache_prefers_evicting_structure_scans() {
        let mut c = SetAssocCache::new(1, 2, PolicyKind::Popt);
        c.access(10, 0, false, Region::VertexStates);
        c.access(1, 0, false, Region::NeighborArray);
        // Third line: the neighbor-array line (RRPV 3) must be the victim.
        let ev = c.access(2, 0, false, Region::NeighborArray).evicted.unwrap();
        assert_eq!(ev.line, 1);
        assert!(c.contains(10));
    }

    #[test]
    #[should_panic(expected = "sets and ways")]
    fn zero_geometry_panics() {
        let _ = SetAssocCache::new(0, 2, PolicyKind::Lru);
    }

    #[test]
    fn drrip_leader_sets_are_fixed_per_bank() {
        // The first stripe of sets (one per bank) are SRRIP leaders, the
        // second stripe BRRIP leaders, repeating every LEADER_STRIDE
        // stripes.
        for bank in 0..DUEL_BANKS {
            assert_eq!(DuelState::leader(bank), Some(true));
            assert_eq!(DuelState::leader(DUEL_BANKS + bank), Some(false));
            assert_eq!(DuelState::leader(2 * DUEL_BANKS + bank), None);
        }
        assert_eq!(DuelState::leader(DUEL_BANKS * DuelState::LEADER_STRIDE), Some(true));
        assert_eq!(DuelState::leader(DUEL_BANKS * (DuelState::LEADER_STRIDE + 1)), Some(false));
    }

    #[test]
    fn drrip_duel_steers_followers_by_leader_misses() {
        // Drive misses only into bank 0's SRRIP leader (set 0 of 64): its
        // PSEL rises, so bank-0 follower sets must switch to BRRIP
        // insertion.
        let mut c = SetAssocCache::new(64, 2, PolicyKind::Drrip);
        for k in 0..1_000u64 {
            c.access(k * 64, 0, false, Region::NeighborArray);
        }
        assert!(c.duel[0].psel > 0, "SRRIP-leader misses must raise PSEL");
        let mut duel = c.duel[0];
        let mut distant = 0;
        for _ in 0..32 {
            // Set 16 is a bank-0 follower (16 / DUEL_BANKS == 2).
            if duel.insert_rrpv(16) == 3 {
                distant += 1;
            }
        }
        assert!(distant >= 30, "followers must insert distant under BRRIP");
        // Conversely, misses in bank 0's BRRIP leader (set 8) pull PSEL
        // back down.
        for k in 0..3_000u64 {
            c.access(k * 64 + 8, 0, false, Region::NeighborArray);
        }
        assert!(c.duel[0].psel < 0);
        assert_eq!(c.duel[0].insert_rrpv(16), 2, "followers back on SRRIP insertion");
    }

    #[test]
    fn drrip_banks_duel_independently() {
        // Leader misses in bank 0 must never move bank 1's selector.
        let mut c = SetAssocCache::new(64, 2, PolicyKind::Drrip);
        for k in 0..1_000u64 {
            c.access(k * 64, 0, false, Region::NeighborArray);
        }
        assert!(c.duel[0].psel > 0);
        for bank in 1..DUEL_BANKS {
            assert_eq!(c.duel[bank].psel, 0, "bank {bank} selector moved");
        }
    }

    #[test]
    fn drrip_brrip_occasionally_inserts_near() {
        let mut duel = DuelState::new();
        duel.psel = 100; // followers on BRRIP
        let rrpvs: Vec<u32> = (0..64).map(|_| duel.insert_rrpv(16)).collect();
        assert!(rrpvs.contains(&2), "BRRIP must rarely insert near");
        assert!(rrpvs.iter().filter(|&&r| r == 3).count() >= 60);
    }

    #[test]
    fn drrip_psel_saturates() {
        let mut duel = DuelState::new();
        for _ in 0..10_000 {
            duel.on_miss(0);
        }
        assert_eq!(duel.psel, DuelState::PSEL_MAX);
        for _ in 0..30_000 {
            duel.on_miss(DUEL_BANKS);
        }
        assert_eq!(duel.psel, -DuelState::PSEL_MAX);
    }

    #[test]
    fn adopt_sets_copies_owned_sets_only() {
        let mut a = SetAssocCache::new(4, 2, PolicyKind::Lru);
        let mut b = SetAssocCache::new(4, 2, PolicyKind::Lru);
        a.access(0, 0, false, Region::VertexStates); // set 0
        a.access(1, 1, true, Region::NeighborArray); // set 1
        b.access(5, 2, true, Region::VertexStates); // set 1
        b.access(2, 3, false, Region::OffsetArray); // set 2
        a.adopt_sets(&b, |s| s % 2 == 1);
        assert!(a.contains(0), "unowned set 0 must be untouched");
        assert!(a.contains(5) && !a.contains(1), "owned set 1 must be replaced");
        assert!(!a.contains(2), "unowned set 2 must not be adopted");
    }
}
