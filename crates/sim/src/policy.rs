//! Cache replacement policies (Fig 23 compares LRU, DRRIP, P-OPT, GRASP).
//!
//! Policies operate on per-line `meta` values stored in the cache:
//!
//! * **LRU** — `meta` is a monotonically increasing access stamp; the victim
//!   is the smallest stamp.
//! * **DRRIP** — 2-bit re-reference prediction values (RRPV). We implement
//!   the SRRIP-dominant configuration (insert at RRPV 2, promote to 0 on
//!   hit, victim = RRPV 3 with aging), which is what DRRIP converges to on
//!   these scan-heavy workloads.
//! * **GRASP** (Faldu et al., HPCA'20) — domain-specialized insertion:
//!   lines from the hot-vertex region are inserted at RRPV 0 and re-promoted
//!   on hit, protecting them from thrashing; cold lines follow DRRIP.
//! * **P-OPT** (Balaji et al., HPCA'21) — transpose-driven approximation of
//!   Belady. Our approximation: graph-structure scan data (offsets /
//!   neighbors), whose next reuse is farthest away, is inserted near-evict
//!   (RRPV 3); vertex state lines at RRPV 1. This captures P-OPT's key
//!   effect — structure streams never displace state lines.

use crate::address::Region;

/// Replacement policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// Dynamic re-reference interval prediction (SRRIP-dominant).
    Drrip,
    /// GRASP domain-specialized insertion (hot region protected).
    Grasp,
    /// P-OPT transpose-driven Belady approximation.
    Popt,
}

/// Maximum RRPV for the RRIP-family policies (2-bit).
const RRPV_MAX: u32 = 3;

impl PolicyKind {
    /// Meta value for a newly inserted line.
    #[must_use]
    pub fn insert_meta(self, region: Region, stamp: u32) -> u32 {
        match self {
            PolicyKind::Lru => stamp,
            PolicyKind::Drrip => 2,
            // GRASP inserts hot-region lines at highest priority and cold
            // lines at distant re-reference, so scans evict each other
            // instead of aging out the protected region.
            PolicyKind::Grasp => {
                if matches!(region, Region::CoalescedStates | Region::HashTable) {
                    0
                } else {
                    RRPV_MAX
                }
            }
            PolicyKind::Popt => match region {
                Region::OffsetArray
                | Region::NeighborArray
                | Region::WeightArray
                | Region::EdgeVisited => RRPV_MAX,
                Region::VertexStates | Region::CoalescedStates => 1,
                _ => 2,
            },
        }
    }

    /// Meta value after a hit on a line with current `meta`.
    #[must_use]
    pub fn hit_meta(self, _region: Region, _meta: u32, stamp: u32) -> u32 {
        match self {
            PolicyKind::Lru => stamp,
            // GRASP promotes hot-region hits the same as other hits at this
            // layer; its preferential treatment is applied at insertion.
            PolicyKind::Drrip | PolicyKind::Popt | PolicyKind::Grasp => 0,
        }
    }

    /// Chooses the victim way among `metas` (all valid). May mutate metas
    /// for the RRIP aging step. Returns the victim index.
    #[must_use]
    pub fn choose_victim(self, metas: &mut [u32]) -> usize {
        assert!(!metas.is_empty(), "victim selection over empty set");
        match self {
            PolicyKind::Lru => {
                let mut best = 0;
                for (i, &m) in metas.iter().enumerate() {
                    if m < metas[best] {
                        best = i;
                    }
                }
                best
            }
            PolicyKind::Drrip | PolicyKind::Grasp | PolicyKind::Popt => loop {
                if let Some(i) = metas.iter().position(|&m| m >= RRPV_MAX) {
                    return i;
                }
                for m in metas.iter_mut() {
                    *m += 1;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_victim_is_oldest_stamp() {
        let mut metas = vec![5, 2, 9, 7];
        assert_eq!(PolicyKind::Lru.choose_victim(&mut metas), 1);
    }

    #[test]
    fn rrip_victim_is_rrpv_max_with_aging() {
        let mut metas = vec![0, 2, 1];
        let v = PolicyKind::Drrip.choose_victim(&mut metas);
        // After aging, the way that started at 2 reaches 3 first.
        assert_eq!(v, 1);
    }

    #[test]
    fn grasp_protects_hot_region_on_insert() {
        assert_eq!(PolicyKind::Grasp.insert_meta(Region::CoalescedStates, 0), 0);
        assert_eq!(PolicyKind::Grasp.insert_meta(Region::NeighborArray, 0), 3);
    }

    #[test]
    fn popt_streams_structure_near_evict() {
        assert_eq!(PolicyKind::Popt.insert_meta(Region::NeighborArray, 0), 3);
        assert_eq!(PolicyKind::Popt.insert_meta(Region::VertexStates, 0), 1);
    }

    #[test]
    fn hit_promotes_in_rrip_family() {
        for p in [PolicyKind::Drrip, PolicyKind::Grasp, PolicyKind::Popt] {
            assert_eq!(p.hit_meta(Region::VertexStates, 2, 0), 0);
        }
    }

    #[test]
    fn lru_hit_takes_stamp() {
        assert_eq!(PolicyKind::Lru.hit_meta(Region::VertexStates, 1, 42), 42);
    }
}
