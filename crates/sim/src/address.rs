//! Address-space layout of the in-memory data structures.
//!
//! The simulator works on virtual addresses so cache behaviour is realistic.
//! Each of the paper's arrays (§3.3.1) gets a page-aligned region; element
//! addresses are computed from the region base and a typed element size.

/// Which in-memory structure an access touches. Drives both address
/// computation and per-region statistics (e.g. the useful-fetched-state
/// metric only looks at [`Region::VertexStates`] / [`Region::CoalescedStates`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Region {
    /// `Offset_Array`: per-vertex begin/end offsets (8 B entries).
    OffsetArray,
    /// `Neighbor_Array`: neighbor ids (4 B entries).
    NeighborArray,
    /// Edge weights parallel to the neighbor array (4 B entries).
    WeightArray,
    /// `Vertex_States_Array`: algorithm states (4 B entries).
    VertexStates,
    /// `Active_Vertices` bitvector (1 bit per vertex).
    ActiveVertices,
    /// `Hot_Vertices` bitvector (1 bit per vertex).
    HotVertices,
    /// `Topology_List`: per-vertex pending-propagation counters (4 B).
    TopologyList,
    /// `Coalesced_States`: consolidated hot-vertex states (4 B).
    CoalescedStates,
    /// `H_Table`: hash-table entries `<vertex id, offset>` (8 B).
    HashTable,
    /// Software frontier / worklist storage (4 B entries).
    Frontier,
    /// Engine-specific auxiliary metadata (dependency trees, tags; 4 B).
    AuxMeta,
    /// Per-edge visited flags used by the traversal (1 bit per edge).
    EdgeVisited,
}

impl Region {
    /// All regions, in layout order.
    pub const ALL: [Region; 12] = [
        Region::OffsetArray,
        Region::NeighborArray,
        Region::WeightArray,
        Region::VertexStates,
        Region::ActiveVertices,
        Region::HotVertices,
        Region::TopologyList,
        Region::CoalescedStates,
        Region::HashTable,
        Region::Frontier,
        Region::AuxMeta,
        Region::EdgeVisited,
    ];

    /// Number of regions.
    pub const COUNT: usize = Region::ALL.len();

    /// Index into per-region tables: the derived discriminant, so it can
    /// never drift from the variant order.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The observability counter key for accesses to this region (starts
    /// with [`tdgraph_obs::keys::REGION_PREFIX`]).
    #[must_use]
    pub const fn obs_key(self) -> &'static str {
        match self {
            Region::OffsetArray => "sim.region.offset_array",
            Region::NeighborArray => "sim.region.neighbor_array",
            Region::WeightArray => "sim.region.weight_array",
            Region::VertexStates => "sim.region.vertex_states",
            Region::ActiveVertices => "sim.region.active_vertices",
            Region::HotVertices => "sim.region.hot_vertices",
            Region::TopologyList => "sim.region.topology_list",
            Region::CoalescedStates => "sim.region.coalesced_states",
            Region::HashTable => "sim.region.hash_table",
            Region::Frontier => "sim.region.frontier",
            Region::AuxMeta => "sim.region.aux_meta",
            Region::EdgeVisited => "sim.region.edge_visited",
        }
    }

    /// Bytes per addressable element. Bitvectors are addressed by the byte
    /// containing the bit.
    #[must_use]
    pub fn element_bytes(self) -> u64 {
        match self {
            Region::OffsetArray | Region::HashTable => 8,
            Region::NeighborArray
            | Region::WeightArray
            | Region::VertexStates
            | Region::TopologyList
            | Region::CoalescedStates
            | Region::Frontier
            | Region::AuxMeta => 4,
            Region::ActiveVertices | Region::HotVertices | Region::EdgeVisited => 1,
        }
    }

    /// Whether indexes address bits (packed 8 per byte).
    #[must_use]
    pub fn is_bitvector(self) -> bool {
        matches!(self, Region::ActiveVertices | Region::HotVertices | Region::EdgeVisited)
    }

    /// Whether the region holds vertex states (for the line-utilization
    /// metric of Fig 3c / Fig 12).
    #[must_use]
    pub fn is_state_region(self) -> bool {
        matches!(self, Region::VertexStates | Region::CoalescedStates)
    }
}

/// Page-aligned layout of every region for a given graph size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressSpace {
    bases: [u64; Region::ALL.len()],
    total: u64,
}

const PAGE: u64 = 4096;

impl AddressSpace {
    /// Lays out regions for a graph with `vertices` vertices and `edges`
    /// edges, with `coalesced_entries` hot-vertex slots.
    #[must_use]
    pub fn layout(vertices: usize, edges: usize, coalesced_entries: usize) -> Self {
        let sizes = |r: Region| -> u64 {
            let elems = match r {
                Region::OffsetArray => vertices as u64 + 1,
                Region::NeighborArray | Region::WeightArray => edges as u64,
                Region::VertexStates | Region::TopologyList | Region::AuxMeta => vertices as u64,
                Region::ActiveVertices | Region::HotVertices => (vertices as u64).div_ceil(8),
                Region::EdgeVisited => (edges as u64).div_ceil(8),
                Region::CoalescedStates => coalesced_entries as u64,
                // σ = 0.75 load factor (§3.3.1): table entries = slots/σ.
                Region::HashTable => (coalesced_entries as f64 / 0.75).ceil() as u64,
                Region::Frontier => vertices as u64,
            };
            let bytes = if r.is_bitvector() { elems } else { elems * r.element_bytes() };
            // Round up to a page, minimum one page, so regions never share
            // cache lines.
            bytes.max(1).div_ceil(PAGE) * PAGE
        };
        let mut bases = [0u64; Region::ALL.len()];
        let mut cursor = PAGE; // leave page 0 unmapped
        for (i, r) in Region::ALL.iter().enumerate() {
            bases[i] = cursor;
            cursor += sizes(*r);
        }
        Self { bases, total: cursor }
    }

    /// Total mapped bytes (end of the last region).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    fn base(&self, region: Region) -> u64 {
        self.bases[region.index()]
    }

    /// Byte address of element `index` in `region`. For bitvector regions
    /// the index is a bit index and the returned address is its byte.
    #[must_use]
    pub fn addr(&self, region: Region, index: u64) -> u64 {
        if region.is_bitvector() {
            self.base(region) + index / 8
        } else {
            self.base(region) + index * region.element_bytes()
        }
    }

    /// The region containing a byte address, if any (reverse lookup used by
    /// the cache statistics).
    #[must_use]
    pub fn region_of(&self, addr: u64) -> Option<Region> {
        let mut found = None;
        for (i, r) in Region::ALL.iter().enumerate() {
            if addr >= self.bases[i] {
                let next = self.bases.get(i + 1).copied().unwrap_or(self.total);
                if addr < next {
                    found = Some(*r);
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let a = AddressSpace::layout(1000, 5000, 32);
        for w in Region::ALL.windows(2) {
            assert!(a.base(w[0]) < a.base(w[1]), "{:?} overlaps {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn addresses_are_element_strided() {
        let a = AddressSpace::layout(1000, 5000, 32);
        let s0 = a.addr(Region::VertexStates, 0);
        let s1 = a.addr(Region::VertexStates, 1);
        assert_eq!(s1 - s0, 4);
        let o0 = a.addr(Region::OffsetArray, 0);
        let o1 = a.addr(Region::OffsetArray, 1);
        assert_eq!(o1 - o0, 8);
    }

    #[test]
    fn bitvector_packs_eight_per_byte() {
        let a = AddressSpace::layout(1000, 5000, 32);
        let b0 = a.addr(Region::ActiveVertices, 0);
        assert_eq!(a.addr(Region::ActiveVertices, 7), b0);
        assert_eq!(a.addr(Region::ActiveVertices, 8), b0 + 1);
    }

    #[test]
    fn region_of_reverses_addr() {
        let a = AddressSpace::layout(1000, 5000, 32);
        for r in Region::ALL {
            let addr = a.addr(r, 3);
            assert_eq!(a.region_of(addr), Some(r), "reverse lookup failed for {r:?}");
        }
        assert_eq!(a.region_of(0), None, "page 0 is unmapped");
    }

    #[test]
    fn bases_are_page_aligned() {
        let a = AddressSpace::layout(12345, 99999, 77);
        for r in Region::ALL {
            assert_eq!(a.base(r) % PAGE, 0);
        }
    }

    #[test]
    fn hash_table_sized_by_load_factor() {
        let a = AddressSpace::layout(1 << 16, 1 << 18, 1 << 12);
        // With σ=0.75 the table region must hold ≥ entries/0.75 slots.
        let base = a.base(Region::HashTable);
        let next = a.base(Region::Frontier);
        assert!(next - base >= ((1 << 12) as f64 / 0.75) as u64 * 8);
    }

    #[test]
    fn region_index_is_the_discriminant() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(Region::COUNT, Region::ALL.len());
    }

    #[test]
    fn region_obs_keys_are_prefixed_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for r in Region::ALL {
            assert!(r.obs_key().starts_with(tdgraph_obs::keys::REGION_PREFIX), "{r:?}");
            assert!(seen.insert(r.obs_key()), "duplicate key for {r:?}");
        }
    }

    #[test]
    fn empty_graph_layout_is_valid() {
        let a = AddressSpace::layout(0, 0, 0);
        assert!(a.addr(Region::VertexStates, 0) > 0);
    }
}
