//! Energy model (replaces McPAT + the DDR4 power calculator, §4.4).
//!
//! Per-event dynamic energies are documented constants in the ballpark of
//! published 22 nm numbers (the paper also evaluates at 22 nm via McPAT).
//! Fig 19 reports component *shares*, which are driven entirely by the
//! counted events, so the absolute scale of these constants cancels out.

use tdgraph_obs::{keys, Recorder, Snapshot};

use crate::stats::MachineStats;

/// Per-event dynamic energy constants, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConstants {
    /// Average core energy per algorithmic operation.
    pub core_op_nj: f64,
    /// L1D access.
    pub l1_nj: f64,
    /// L2 access.
    pub l2_nj: f64,
    /// LLC bank access.
    pub llc_nj: f64,
    /// One NoC hop·cycle of traffic.
    pub noc_hop_nj: f64,
    /// One 64 B DRAM line transfer.
    pub dram_line_nj: f64,
    /// Chip static (leakage + clock) power in watts, charged for the run's
    /// duration — McPAT includes it, and it is what rewards a faster
    /// engine with lower total energy.
    pub static_w: f64,
}

impl EnergyConstants {
    /// Default 22 nm-class constants.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            core_op_nj: 0.08,
            l1_nj: 0.11,
            l2_nj: 0.35,
            llc_nj: 1.30,
            noc_hop_nj: 0.06,
            dram_line_nj: 20.0,
            static_w: 48.0,
        }
    }
}

impl Default for EnergyConstants {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Energy by component, in nanojoules (Fig 19's breakdown categories).
/// Static energy is folded into the components with the usual chip split
/// (60 % cores, 25 % caches, 5 % NoC, 10 % DRAM interface).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core energy (dynamic + static share).
    pub core_nj: f64,
    /// Cache hierarchy (L1 + L2 + LLC).
    pub cache_nj: f64,
    /// Network-on-chip.
    pub noc_nj: f64,
    /// DRAM.
    pub dram_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.core_nj + self.cache_nj + self.noc_nj + self.dram_nj
    }

    /// The breakdown as `(component, nanojoules)` pairs, in the fixed
    /// Fig 19 order (core, cache, NoC, DRAM).
    #[must_use]
    pub fn per_component(&self) -> [(&'static str, f64); 4] {
        [
            ("core", self.core_nj),
            ("cache", self.cache_nj),
            ("noc", self.noc_nj),
            ("dram", self.dram_nj),
        ]
    }

    /// Exports the breakdown into the observability layer as `energy.*`
    /// gauges. [`EnergyBreakdown::from_snapshot`] inverts this.
    pub fn export_into(&self, rec: &mut dyn Recorder) {
        rec.gauge(keys::ENERGY_CORE_NJ, self.core_nj);
        rec.gauge(keys::ENERGY_CACHE_NJ, self.cache_nj);
        rec.gauge(keys::ENERGY_NOC_NJ, self.noc_nj);
        rec.gauge(keys::ENERGY_DRAM_NJ, self.dram_nj);
    }

    /// Reconstructs the breakdown from the `energy.*` gauges of a
    /// snapshot. Gauges a run never emitted read back as zero.
    #[must_use]
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        Self {
            core_nj: snapshot.gauge(keys::ENERGY_CORE_NJ).unwrap_or(0.0),
            cache_nj: snapshot.gauge(keys::ENERGY_CACHE_NJ).unwrap_or(0.0),
            noc_nj: snapshot.gauge(keys::ENERGY_NOC_NJ).unwrap_or(0.0),
            dram_nj: snapshot.gauge(keys::ENERGY_DRAM_NJ).unwrap_or(0.0),
        }
    }

    /// Computes the breakdown from machine statistics, DRAM line counts,
    /// and the run duration (`cycles` at `freq_ghz`) for the static share.
    #[must_use]
    pub fn from_stats(
        stats: &MachineStats,
        dram_lines: u64,
        cycles: u64,
        freq_ghz: f64,
        constants: EnergyConstants,
    ) -> Self {
        let ops = stats.total_ops();
        let llc_lookups = stats.llc_hits + stats.llc_misses;
        // Static energy: P_static × t, in nJ.
        let static_nj =
            if freq_ghz > 0.0 { constants.static_w * cycles as f64 / freq_ghz } else { 0.0 };
        Self {
            core_nj: ops as f64 * constants.core_op_nj + 0.60 * static_nj,
            cache_nj: stats.accesses as f64 * constants.l1_nj
                + (stats.l2_hits + llc_lookups) as f64 * constants.l2_nj
                + llc_lookups as f64 * constants.llc_nj
                + 0.25 * static_nj,
            noc_nj: stats.noc_hop_cycles as f64 * constants.noc_hop_nj + 0.05 * static_nj,
            dram_nj: dram_lines as f64 * constants.dram_line_nj + 0.10 * static_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_zero_energy() {
        let e = EnergyBreakdown::from_stats(
            &MachineStats::default(),
            0,
            0,
            2.5,
            EnergyConstants::nominal(),
        );
        assert_eq!(e.total_nj(), 0.0);
    }

    #[test]
    fn dram_dominates_when_misses_dominate() {
        let s = MachineStats { accesses: 100, llc_misses: 100, ..Default::default() };
        let e = EnergyBreakdown::from_stats(&s, 100, 0, 2.5, EnergyConstants::nominal());
        assert!(e.dram_nj > e.cache_nj);
        assert!(e.dram_nj > e.noc_nj);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let mut s = MachineStats {
            accesses: 10,
            l2_hits: 5,
            llc_hits: 3,
            noc_hop_cycles: 7,
            ..Default::default()
        };
        s.op_counts[0] = 20;
        let e = EnergyBreakdown::from_stats(&s, 2, 0, 2.5, EnergyConstants::nominal());
        let sum = e.core_nj + e.cache_nj + e.noc_nj + e.dram_nj;
        assert!((e.total_nj() - sum).abs() < 1e-12);
        assert!(e.total_nj() > 0.0);
    }

    #[test]
    fn export_import_roundtrips_and_components_sum() {
        let s =
            MachineStats { accesses: 40, llc_misses: 9, noc_hop_cycles: 3, ..Default::default() };
        let e = EnergyBreakdown::from_stats(&s, 9, 500, 2.5, EnergyConstants::nominal());
        let sum: f64 = e.per_component().iter().map(|(_, nj)| nj).sum();
        assert!((sum - e.total_nj()).abs() < 1e-12);

        let mut rec = tdgraph_obs::MemoryRecorder::new();
        e.export_into(&mut rec);
        let restored = EnergyBreakdown::from_snapshot(&rec.into_snapshot());
        assert_eq!(restored, e);
    }

    #[test]
    fn static_energy_scales_with_duration() {
        let s = MachineStats::default();
        let fast = EnergyBreakdown::from_stats(&s, 0, 1_000, 2.5, EnergyConstants::nominal());
        let slow = EnergyBreakdown::from_stats(&s, 0, 4_000, 2.5, EnergyConstants::nominal());
        assert!((slow.total_nj() - 4.0 * fast.total_nj()).abs() < 1e-6);
        assert!(fast.core_nj > fast.noc_nj, "static split favors cores");
    }
}
