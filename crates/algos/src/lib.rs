//! Incremental graph algorithms for the TDGraph reproduction.
//!
//! The paper evaluates four benchmarks (§4.1): Incremental PageRank and
//! Adsorption (*accumulative*), SSSP and CC (*monotonic*). This crate
//! provides:
//!
//! * [`traits::Algo`] — the algorithm definitions and their
//!   category-specific update rules,
//! * [`scratch`] — from-scratch fixpoint solvers (initial fixed point and
//!   correctness oracle),
//! * [`incremental`] — the §2.1 seeding semantics: relaxing additions,
//!   tag/reset/regather for monotonic deletions, cancel-and-redo residual
//!   injection for accumulative updates,
//! * [`tap`] — access-event taps that let engines charge every
//!   data-structure touch to the simulator,
//! * [`verify`] — oracle comparison helpers.
//!
//! # Example
//!
//! ```
//! use tdgraph_algos::scratch::solve;
//! use tdgraph_algos::traits::Algo;
//! use tdgraph_graph::csr::Csr;
//! use tdgraph_graph::types::Edge;
//!
//! let g = Csr::from_edges(3, &[Edge::new(0, 1, 2.0), Edge::new(1, 2, 2.0)]);
//! let sol = solve(&Algo::sssp(0), &g);
//! assert_eq!(sol.states, vec![0.0, 2.0, 4.0]);
//! ```

pub mod incremental;
pub mod scratch;
pub mod tap;
pub mod traits;
pub mod verify;

pub use incremental::{seed_after_batch, AlgoState};
pub use scratch::{out_mass, solve, Solution, NO_PARENT};
pub use traits::{Algo, AlgorithmKind};
