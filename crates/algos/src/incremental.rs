//! Incremental-computation seeding (§2.1).
//!
//! After a batch is applied, the previous snapshot's converged states must
//! be adjusted and an initial *affected* set produced; the execution engine
//! then propagates from that set to the new fixpoint. The adjustment rules
//! differ by category:
//!
//! * **Monotonic** (SSSP, CC) — additions are relaxed directly; deletions
//!   trigger the paper's five steps: tag-propagate the dependence subtree of
//!   each unsafe deleted edge (①), reset those vertices to their initial
//!   values (②), regather each reset vertex over its incoming edges (③),
//!   mark it affected (④), and leave the propagation (⑤) to the engine.
//! * **Accumulative** (PageRank, Adsorption) — the previously converged
//!   contribution of each changed source is cancelled and its new
//!   contribution injected, as signed residuals at the destination vertices;
//!   the engine then propagates residuals.
//!
//! Every data-structure touch is reported through an
//! [`crate::tap::AccessTap`] so engines can charge the work to the
//! simulator.

use std::collections::{BTreeMap, HashMap};

use tdgraph_graph::csr::Csr;
use tdgraph_graph::streaming::AppliedBatch;
use tdgraph_graph::types::{VertexId, Weight};

use crate::scratch::{out_mass, Solution, NO_PARENT};
use crate::tap::{AccessEvent, AccessTap};
use crate::traits::{Algo, AlgorithmKind};

/// Mutable per-vertex algorithm state carried across batches.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoState {
    /// Current states.
    pub states: Vec<f32>,
    /// Dependency parents (monotonic only; `NO_PARENT` elsewhere).
    pub parents: Vec<VertexId>,
    /// Pending residuals (accumulative only).
    pub residuals: Vec<f32>,
}

impl AlgoState {
    /// Wraps a converged from-scratch [`Solution`].
    #[must_use]
    pub fn from_solution(sol: Solution, vertex_count: usize) -> Self {
        let mut s = Self { states: sol.states, parents: sol.parents, residuals: sol.residuals };
        s.states.resize(vertex_count, 0.0);
        s.parents.resize(vertex_count, NO_PARENT);
        s.residuals.resize(vertex_count, 0.0);
        s
    }
}

/// Adjusts `state` for `applied` updates and returns the sorted initial
/// affected set. `graph` is the *new* snapshot; `transpose` its reverse.
pub fn seed_after_batch<T: AccessTap>(
    algo: &Algo,
    graph: &Csr,
    transpose: &Csr,
    state: &mut AlgoState,
    applied: &AppliedBatch,
    tap: &mut T,
) -> Vec<VertexId> {
    match algo.kind() {
        AlgorithmKind::Monotonic => seed_monotonic(algo, graph, transpose, state, applied, tap),
        AlgorithmKind::Accumulative => seed_accumulative(algo, graph, state, applied, tap),
    }
}

// ---------------------------------------------------------------------
// Monotonic seeding
// ---------------------------------------------------------------------

fn seed_monotonic<T: AccessTap>(
    algo: &Algo,
    graph: &Csr,
    transpose: &Csr,
    state: &mut AlgoState,
    applied: &AppliedBatch,
    tap: &mut T,
) -> Vec<VertexId> {
    let mut affected: Vec<VertexId> = Vec::new();

    // Additions (and reweights relaxed with the new weight): Fig 2(b)
    // steps ①②.
    for e in applied
        .added_edges()
        .iter()
        .copied()
        .chain(applied.reweighted_edges().iter().map(|&(e, _)| e))
    {
        tap.touch(AccessEvent::ReadState(e.src));
        tap.touch(AccessEvent::ReadState(e.dst));
        let cand = algo.mono_propagate(state.states[e.src as usize], e.weight);
        if algo.mono_better(cand, state.states[e.dst as usize]) {
            state.states[e.dst as usize] = cand;
            state.parents[e.dst as usize] = e.src;
            tap.touch(AccessEvent::WriteState(e.dst));
            tap.touch(AccessEvent::WriteAux(e.dst));
            affected.push(e.dst);
        }
    }

    // Deletions (and weight increases on the dependency edge): Fig 2(c).
    let mut suspects: Vec<VertexId> = Vec::new();
    for e in applied.deleted_edges() {
        tap.touch(AccessEvent::ReadAux(e.dst));
        if state.parents[e.dst as usize] == e.src {
            suspects.push(e.dst);
        }
    }
    for (e, old_w) in applied.reweighted_edges() {
        if e.weight > *old_w {
            tap.touch(AccessEvent::ReadAux(e.dst));
            if state.parents[e.dst as usize] == e.src {
                suspects.push(e.dst);
            }
        }
    }
    if suspects.is_empty() {
        affected.sort_unstable();
        affected.dedup();
        return affected;
    }

    // Step ①: tag propagation over the dependence forest.
    let mut invalid = vec![false; graph.vertex_count()];
    let mut stack: Vec<VertexId> = Vec::new();
    for v in suspects {
        if !invalid[v as usize] {
            invalid[v as usize] = true;
            stack.push(v);
        }
    }
    let mut invalid_list: Vec<VertexId> = Vec::new();
    while let Some(v) = stack.pop() {
        invalid_list.push(v);
        tap.touch(AccessEvent::ReadOffsets(v));
        let (lo, _hi) = graph.neighbor_range(v);
        for (i, (nbr, _w)) in graph.out_edges(v).enumerate() {
            tap.touch(AccessEvent::ReadNeighbor((lo + i) as u64));
            tap.touch(AccessEvent::ReadAux(nbr));
            if !invalid[nbr as usize] && state.parents[nbr as usize] == v {
                invalid[nbr as usize] = true;
                stack.push(nbr);
            }
        }
    }

    // Step ②: reset.
    for &v in &invalid_list {
        state.states[v as usize] = algo.mono_init(v);
        state.parents[v as usize] = NO_PARENT;
        tap.touch(AccessEvent::WriteState(v));
        tap.touch(AccessEvent::WriteAux(v));
    }

    // Step ③: regather over incoming edges. Reset vertices contribute
    // their (safe) initial values; valid vertices their converged states.
    for &v in &invalid_list {
        tap.touch(AccessEvent::ReadOffsets(v));
        let (lo, _hi) = transpose.neighbor_range(v);
        let mut best = state.states[v as usize];
        let mut best_parent = state.parents[v as usize];
        for (i, (src, w)) in transpose.out_edges(v).enumerate() {
            tap.touch(AccessEvent::ReadNeighbor((lo + i) as u64));
            tap.touch(AccessEvent::ReadState(src));
            let cand = algo.mono_propagate(state.states[src as usize], w);
            if algo.mono_better(cand, best) {
                best = cand;
                best_parent = src;
            }
        }
        if algo.mono_better(best, state.states[v as usize]) {
            state.states[v as usize] = best;
            state.parents[v as usize] = best_parent;
            tap.touch(AccessEvent::WriteState(v));
            tap.touch(AccessEvent::WriteAux(v));
        }
        // Step ④: every reset vertex becomes affected.
        affected.push(v);
    }

    affected.sort_unstable();
    affected.dedup();
    affected
}

// ---------------------------------------------------------------------
// Accumulative seeding
// ---------------------------------------------------------------------

fn seed_accumulative<T: AccessTap>(
    algo: &Algo,
    graph: &Csr,
    state: &mut AlgoState,
    applied: &AppliedBatch,
    tap: &mut T,
) -> Vec<VertexId> {
    let eps = algo.epsilon();
    // Group the topology changes by source vertex.
    #[derive(Default)]
    struct SourceDelta {
        added: Vec<(VertexId, Weight)>,
        deleted: Vec<(VertexId, Weight)>,
        reweighted: Vec<(VertexId, Weight, Weight)>, // (dst, new_w, old_w)
    }
    // Ordered map: the injection loop below both emits tap events and
    // accumulates f32 residuals per destination, so its iteration order
    // must be reproducible run to run for the cycle counts and affected
    // sets to be deterministic.
    let mut by_src: BTreeMap<VertexId, SourceDelta> = BTreeMap::new();
    for e in applied.added_edges() {
        by_src.entry(e.src).or_default().added.push((e.dst, e.weight));
    }
    for e in applied.deleted_edges() {
        by_src.entry(e.src).or_default().deleted.push((e.dst, e.weight));
    }
    for (e, old_w) in applied.reweighted_edges() {
        by_src.entry(e.src).or_default().reweighted.push((e.dst, e.weight, *old_w));
    }

    let new_mass = out_mass(algo, graph);
    let mut affected: Vec<VertexId> = Vec::new();

    for (src, delta) in by_src {
        tap.touch(AccessEvent::ReadState(src));
        let r = state.states[src as usize];
        let m_new = new_mass[src as usize];
        // Reconstruct the old outgoing mass of this source.
        let mut m_old = m_new;
        for &(_, w) in &delta.added {
            m_old -= algo.edge_mass(w);
        }
        for &(_, w) in &delta.deleted {
            m_old += algo.edge_mass(w);
        }
        for &(_, new_w, old_w) in &delta.reweighted {
            m_old += algo.edge_mass(old_w) - algo.edge_mass(new_w);
        }

        // The paper's cancel-first rule: subtract the previously converged
        // contribution along every old edge, then add the new contribution
        // along every new edge. Old neighbors = current − added, with
        // deleted edges re-included and reweighted edges at their old
        // weight.
        let added_dsts: Vec<VertexId> = delta.added.iter().map(|&(d, _)| d).collect();
        let reweight_old: HashMap<VertexId, Weight> =
            delta.reweighted.iter().map(|&(d, _, old_w)| (d, old_w)).collect();

        tap.touch(AccessEvent::ReadOffsets(src));
        let (lo, _hi) = graph.neighbor_range(src);
        for (i, (dst, w)) in graph.out_edges(src).enumerate() {
            tap.touch(AccessEvent::ReadNeighbor((lo + i) as u64));
            tap.touch(AccessEvent::ReadWeight((lo + i) as u64));
            // New contribution along this (current) edge.
            let mut inject = algo.acc_scale(r, w, m_new);
            // Cancel the old contribution if this edge existed before.
            if !added_dsts.contains(&dst) {
                let old_w = reweight_old.get(&dst).copied().unwrap_or(w);
                inject -= algo.acc_scale(r, old_w, m_old);
            }
            if inject != 0.0 {
                state.residuals[dst as usize] += inject;
                tap.touch(AccessEvent::WriteState(dst));
                if state.residuals[dst as usize].abs() >= eps {
                    affected.push(dst);
                }
            }
        }
        // Cancel contributions along deleted edges (absent from the new
        // snapshot).
        for &(dst, old_w) in &delta.deleted {
            let inject = -algo.acc_scale(r, old_w, m_old);
            if inject != 0.0 {
                state.residuals[dst as usize] += inject;
                tap.touch(AccessEvent::WriteState(dst));
                if state.residuals[dst as usize].abs() >= eps {
                    affected.push(dst);
                }
            }
        }
    }

    affected.sort_unstable();
    affected.dedup();
    affected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::solve;
    use crate::tap::{CountingTap, NullTap};
    use tdgraph_graph::streaming::StreamingGraph;
    use tdgraph_graph::types::Edge;
    use tdgraph_graph::update::{EdgeUpdate, UpdateBatch};

    /// Full reference propagation from the affected set (what every engine
    /// implements with its own schedule): used here to check seeding leads
    /// to the correct fixpoint.
    fn propagate_to_fixpoint(
        algo: &Algo,
        graph: &Csr,
        state: &mut AlgoState,
        affected: &[VertexId],
    ) {
        match algo.kind() {
            AlgorithmKind::Monotonic => {
                let mut queue: Vec<VertexId> = affected.to_vec();
                while let Some(v) = queue.pop() {
                    let s = state.states[v as usize];
                    for (n, w) in graph.out_edges(v) {
                        let cand = algo.mono_propagate(s, w);
                        if algo.mono_better(cand, state.states[n as usize]) {
                            state.states[n as usize] = cand;
                            state.parents[n as usize] = v;
                            queue.push(n);
                        }
                    }
                }
            }
            AlgorithmKind::Accumulative => {
                let mass = out_mass(algo, graph);
                let eps = algo.epsilon();
                let mut queue: Vec<VertexId> = affected.to_vec();
                while let Some(v) = queue.pop() {
                    let r = state.residuals[v as usize];
                    if r.abs() < eps {
                        continue;
                    }
                    state.residuals[v as usize] = 0.0;
                    state.states[v as usize] += r;
                    if mass[v as usize] <= 0.0 {
                        continue;
                    }
                    for (n, w) in graph.out_edges(v) {
                        state.residuals[n as usize] += algo.acc_scale(r, w, mass[v as usize]);
                        if state.residuals[n as usize].abs() >= eps {
                            queue.push(n);
                        }
                    }
                }
            }
        }
    }

    fn run_incremental(
        algo: &Algo,
        initial: &[Edge],
        n: usize,
        batch: Vec<EdgeUpdate>,
    ) -> (AlgoState, AlgoState) {
        let mut g = StreamingGraph::with_capacity(n);
        g.insert_edges(initial.iter().copied()).unwrap();
        let snap0 = g.snapshot();
        let mut state = AlgoState::from_solution(solve(algo, &snap0), n);

        let batch = UpdateBatch::from_updates(batch).unwrap();
        let applied = g.apply_batch(&batch).unwrap();
        let snap1 = g.snapshot();
        let transpose = snap1.transpose();
        let affected =
            seed_after_batch(algo, &snap1, &transpose, &mut state, &applied, &mut NullTap);
        propagate_to_fixpoint(algo, &snap1, &mut state, &affected);

        let oracle = AlgoState::from_solution(solve(algo, &snap1), n);
        (state, oracle)
    }

    fn assert_states_close(algo: &Algo, got: &AlgoState, want: &AlgoState) {
        let tol = match algo.kind() {
            AlgorithmKind::Monotonic => 1e-6,
            AlgorithmKind::Accumulative => 0.02,
        };
        for (i, (&g, &w)) in got.states.iter().zip(&want.states).enumerate() {
            if g.is_infinite() && w.is_infinite() {
                continue;
            }
            assert!(
                (g - w).abs() <= tol + tol * w.abs(),
                "vertex {i}: got {g}, oracle {w} for {}",
                algo.name()
            );
        }
    }

    #[test]
    fn sssp_addition_creates_shortcut() {
        let algo = Algo::sssp(0);
        let initial = vec![Edge::new(0, 1, 5.0), Edge::new(1, 2, 5.0), Edge::new(2, 3, 5.0)];
        let (got, want) =
            run_incremental(&algo, &initial, 4, vec![EdgeUpdate::addition(0, 3, 1.0)]);
        assert_states_close(&algo, &got, &want);
        assert_eq!(got.states[3], 1.0);
    }

    #[test]
    fn sssp_deletion_invalidates_subtree() {
        let algo = Algo::sssp(0);
        // 0 -> 1 -> 2 -> 3 plus fallback 0 -> 2 (weight 10).
        let initial = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(2, 3, 1.0),
            Edge::new(0, 2, 10.0),
        ];
        let (got, want) = run_incremental(&algo, &initial, 4, vec![EdgeUpdate::deletion(1, 2)]);
        assert_states_close(&algo, &got, &want);
        assert_eq!(got.states[2], 10.0);
        assert_eq!(got.states[3], 11.0);
    }

    #[test]
    fn sssp_deletion_makes_vertices_unreachable() {
        let algo = Algo::sssp(0);
        let initial = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)];
        let (got, want) = run_incremental(&algo, &initial, 3, vec![EdgeUpdate::deletion(0, 1)]);
        assert_states_close(&algo, &got, &want);
        assert!(got.states[1].is_infinite());
        assert!(got.states[2].is_infinite());
    }

    #[test]
    fn sssp_mixed_batch() {
        let algo = Algo::sssp(0);
        let initial = vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 2.0), Edge::new(0, 3, 9.0)];
        let (got, want) = run_incremental(
            &algo,
            &initial,
            5,
            vec![
                EdgeUpdate::deletion(1, 2),
                EdgeUpdate::addition(3, 2, 1.0),
                EdgeUpdate::addition(2, 4, 1.0),
            ],
        );
        assert_states_close(&algo, &got, &want);
    }

    #[test]
    fn sssp_reweight_increase_on_tree_edge() {
        let algo = Algo::sssp(0);
        let initial = vec![Edge::new(0, 1, 1.0), Edge::new(0, 2, 5.0), Edge::new(2, 1, 1.0)];
        let (got, want) =
            run_incremental(&algo, &initial, 3, vec![EdgeUpdate::addition(0, 1, 20.0)]);
        assert_states_close(&algo, &got, &want);
        assert_eq!(got.states[1], 6.0);
    }

    #[test]
    fn cc_deletion_splits_component() {
        let algo = Algo::cc();
        let initial = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)];
        let (got, want) = run_incremental(&algo, &initial, 3, vec![EdgeUpdate::deletion(0, 1)]);
        assert_states_close(&algo, &got, &want);
        assert_eq!(got.states[1], 1.0);
        assert_eq!(got.states[2], 1.0);
    }

    #[test]
    fn cc_addition_merges_labels() {
        let algo = Algo::cc();
        let initial = vec![Edge::new(3, 4, 1.0)];
        let (got, want) =
            run_incremental(&algo, &initial, 5, vec![EdgeUpdate::addition(0, 3, 1.0)]);
        assert_states_close(&algo, &got, &want);
        assert_eq!(got.states[4], 0.0);
    }

    #[test]
    fn pagerank_addition_matches_oracle() {
        let algo = Algo::pagerank();
        let initial = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(2, 0, 1.0)];
        let (got, want) =
            run_incremental(&algo, &initial, 4, vec![EdgeUpdate::addition(1, 3, 1.0)]);
        assert_states_close(&algo, &got, &want);
    }

    #[test]
    fn pagerank_deletion_matches_oracle() {
        let algo = Algo::pagerank();
        let initial = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(0, 2, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(2, 0, 1.0),
        ];
        let (got, want) = run_incremental(&algo, &initial, 3, vec![EdgeUpdate::deletion(0, 2)]);
        assert_states_close(&algo, &got, &want);
    }

    #[test]
    fn adsorption_mixed_batch_matches_oracle() {
        let algo = Algo::adsorption();
        let initial = vec![
            Edge::new(0, 1, 2.0),
            Edge::new(1, 2, 1.0),
            Edge::new(0, 2, 3.0),
            Edge::new(2, 1, 1.0),
        ];
        let (got, want) = run_incremental(
            &algo,
            &initial,
            4,
            vec![EdgeUpdate::deletion(0, 2), EdgeUpdate::addition(2, 3, 2.0)],
        );
        assert_states_close(&algo, &got, &want);
    }

    #[test]
    fn seeding_reports_accesses_through_tap() {
        let algo = Algo::sssp(0);
        let mut g = StreamingGraph::with_capacity(4);
        g.insert_edges([Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)]).unwrap();
        let snap0 = g.snapshot();
        let mut state = AlgoState::from_solution(solve(&algo, &snap0), 4);
        let batch = UpdateBatch::from_updates(vec![EdgeUpdate::deletion(1, 2)]).unwrap();
        let applied = g.apply_batch(&batch).unwrap();
        let snap1 = g.snapshot();
        let t = snap1.transpose();
        let mut tap = CountingTap::default();
        let _ = seed_after_batch(&algo, &snap1, &t, &mut state, &applied, &mut tap);
        assert!(tap.aux_accesses > 0, "deletion handling must touch parents");
        assert!(tap.state_writes > 0, "reset must write states");
    }

    #[test]
    fn no_updates_produces_empty_affected_set() {
        let algo = Algo::pagerank();
        let g = Csr::from_edges(2, &[Edge::new(0, 1, 1.0)]);
        let t = g.transpose();
        let mut state = AlgoState::from_solution(solve(&algo, &g), 2);
        let affected =
            seed_after_batch(&algo, &g, &t, &mut state, &AppliedBatch::default(), &mut NullTap);
        assert!(affected.is_empty());
    }
}
