//! Memory-access taps.
//!
//! The shared algorithm kernels (from-scratch solver, incremental seeding)
//! report every data-structure access through an [`AccessTap`] so the
//! execution engines can charge them to the simulator, while pure-algorithm
//! callers (the oracle, host-native runs) use [`NullTap`] for zero overhead.

use tdgraph_graph::types::VertexId;

/// One logical access to a paper data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessEvent {
    /// Read `Offset_Array[v]` (and `[v+1]`; a single 8 B entry pair).
    ReadOffsets(VertexId),
    /// Read `Neighbor_Array[i]` (flat edge index).
    ReadNeighbor(u64),
    /// Read the weight parallel to edge index `i`.
    ReadWeight(u64),
    /// Read vertex `v`'s state.
    ReadState(VertexId),
    /// Write vertex `v`'s state.
    WriteState(VertexId),
    /// Read dependency metadata (parent pointer / tag) of `v`.
    ReadAux(VertexId),
    /// Write dependency metadata of `v`.
    WriteAux(VertexId),
    /// Read the active bit of `v`.
    ReadActive(VertexId),
    /// Write the active bit of `v`.
    WriteActive(VertexId),
}

/// Receiver of [`AccessEvent`]s.
pub trait AccessTap {
    /// Handles one access.
    fn touch(&mut self, event: AccessEvent);
}

/// Discards all events (pure-algorithm execution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTap;

impl AccessTap for NullTap {
    fn touch(&mut self, _event: AccessEvent) {}
}

/// Counts events by kind (used by tests and the Fig 4 analysis).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingTap {
    /// State reads.
    pub state_reads: u64,
    /// State writes.
    pub state_writes: u64,
    /// Offset reads.
    pub offset_reads: u64,
    /// Neighbor reads.
    pub neighbor_reads: u64,
    /// Weight reads.
    pub weight_reads: u64,
    /// Aux (dependency metadata) accesses.
    pub aux_accesses: u64,
    /// Active-bit accesses.
    pub active_accesses: u64,
}

impl AccessTap for CountingTap {
    fn touch(&mut self, event: AccessEvent) {
        match event {
            AccessEvent::ReadState(_) => self.state_reads += 1,
            AccessEvent::WriteState(_) => self.state_writes += 1,
            AccessEvent::ReadOffsets(_) => self.offset_reads += 1,
            AccessEvent::ReadNeighbor(_) => self.neighbor_reads += 1,
            AccessEvent::ReadWeight(_) => self.weight_reads += 1,
            AccessEvent::ReadAux(_) | AccessEvent::WriteAux(_) => self.aux_accesses += 1,
            AccessEvent::ReadActive(_) | AccessEvent::WriteActive(_) => self.active_accesses += 1,
        }
    }
}

/// Records the vertex of every state access, preserving order (drives the
/// Fig 4b access-frequency analysis).
#[derive(Debug, Clone, Default)]
pub struct StateTraceTap {
    /// Vertices whose state was read or written, in order.
    pub trace: Vec<VertexId>,
}

impl AccessTap for StateTraceTap {
    fn touch(&mut self, event: AccessEvent) {
        if let AccessEvent::ReadState(v) | AccessEvent::WriteState(v) = event {
            self.trace.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tap_counts_by_kind() {
        let mut t = CountingTap::default();
        t.touch(AccessEvent::ReadState(1));
        t.touch(AccessEvent::WriteState(1));
        t.touch(AccessEvent::ReadState(2));
        t.touch(AccessEvent::ReadOffsets(0));
        t.touch(AccessEvent::ReadNeighbor(5));
        t.touch(AccessEvent::WriteAux(3));
        assert_eq!(t.state_reads, 2);
        assert_eq!(t.state_writes, 1);
        assert_eq!(t.offset_reads, 1);
        assert_eq!(t.neighbor_reads, 1);
        assert_eq!(t.aux_accesses, 1);
    }

    #[test]
    fn state_trace_tap_records_only_state_accesses() {
        let mut t = StateTraceTap::default();
        t.touch(AccessEvent::ReadState(7));
        t.touch(AccessEvent::ReadNeighbor(0));
        t.touch(AccessEvent::WriteState(9));
        assert_eq!(t.trace, vec![7, 9]);
    }

    #[test]
    fn null_tap_is_inert() {
        let mut t = NullTap;
        t.touch(AccessEvent::ReadState(0));
    }
}
