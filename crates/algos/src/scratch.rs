//! From-scratch fixpoint solvers.
//!
//! These compute the converged states of a snapshot directly. They serve
//! two roles: producing the initial fixed point after the 50 % load
//! (§4.1), and acting as the correctness oracle every incremental engine is
//! verified against.

use std::collections::VecDeque;

use tdgraph_graph::csr::Csr;
use tdgraph_graph::types::VertexId;

use crate::traits::{Algo, AlgorithmKind};

/// Sentinel for "no dependency parent".
pub const NO_PARENT: VertexId = VertexId::MAX;

/// Converged algorithm state for one snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Per-vertex converged states.
    pub states: Vec<f32>,
    /// Monotonic dependency parents (`NO_PARENT` where none); empty for
    /// accumulative algorithms.
    pub parents: Vec<VertexId>,
    /// Accumulative residual vector at convergence (all below ε); empty for
    /// monotonic algorithms.
    pub residuals: Vec<f32>,
}

/// Total outgoing edge mass per vertex (out-degree for PageRank, summed
/// weights for Adsorption). Needed to split pushed residuals.
#[must_use]
pub fn out_mass(algo: &Algo, graph: &Csr) -> Vec<f32> {
    let n = graph.vertex_count();
    let mut mass = vec![0.0f32; n];
    for v in 0..n as VertexId {
        mass[v as usize] = graph.weights(v).iter().map(|&w| algo.edge_mass(w)).sum();
    }
    mass
}

/// Solves `algo` on `graph` from scratch.
#[must_use]
pub fn solve(algo: &Algo, graph: &Csr) -> Solution {
    match algo.kind() {
        AlgorithmKind::Monotonic => solve_monotonic(algo, graph),
        AlgorithmKind::Accumulative => solve_accumulative(algo, graph),
    }
}

fn solve_monotonic(algo: &Algo, graph: &Csr) -> Solution {
    let n = graph.vertex_count();
    let mut states: Vec<f32> = (0..n as VertexId).map(|v| algo.mono_init(v)).collect();
    let mut parents = vec![NO_PARENT; n];
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut queued = vec![false; n];
    for v in 0..n as VertexId {
        if states[v as usize].is_finite() {
            queue.push_back(v);
            queued[v as usize] = true;
        }
    }
    while let Some(v) = queue.pop_front() {
        queued[v as usize] = false;
        let s = states[v as usize];
        for (nbr, w) in graph.out_edges(v) {
            let cand = algo.mono_propagate(s, w);
            if algo.mono_better(cand, states[nbr as usize]) {
                states[nbr as usize] = cand;
                parents[nbr as usize] = v;
                if !queued[nbr as usize] {
                    queued[nbr as usize] = true;
                    queue.push_back(nbr);
                }
            }
        }
    }
    Solution { states, parents, residuals: Vec::new() }
}

fn solve_accumulative(algo: &Algo, graph: &Csr) -> Solution {
    let n = graph.vertex_count();
    let mass = out_mass(algo, graph);
    let eps = algo.epsilon();
    let mut states = vec![0.0f32; n];
    let mut residuals: Vec<f32> = (0..n as VertexId).map(|v| algo.acc_base(v)).collect();
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    let mut queued = vec![false; n];
    for v in 0..n as VertexId {
        if residuals[v as usize].abs() >= eps {
            queue.push_back(v);
            queued[v as usize] = true;
        }
    }
    while let Some(v) = queue.pop_front() {
        queued[v as usize] = false;
        let r = residuals[v as usize];
        if r.abs() < eps {
            continue;
        }
        residuals[v as usize] = 0.0;
        states[v as usize] += r;
        let m = mass[v as usize];
        if m <= 0.0 {
            continue;
        }
        for (nbr, w) in graph.out_edges(v) {
            let push = algo.acc_scale(r, w, m);
            residuals[nbr as usize] += push;
            if residuals[nbr as usize].abs() >= eps && !queued[nbr as usize] {
                queued[nbr as usize] = true;
                queue.push_back(nbr);
            }
        }
    }
    Solution { states, parents: Vec::new(), residuals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_graph::types::Edge;

    fn chain() -> Csr {
        Csr::from_edges(4, &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0), Edge::new(2, 3, 3.0)])
    }

    #[test]
    fn sssp_on_chain() {
        let s = solve(&Algo::sssp(0), &chain());
        assert_eq!(s.states, vec![0.0, 1.0, 3.0, 6.0]);
        assert_eq!(s.parents, vec![NO_PARENT, 0, 1, 2]);
    }

    #[test]
    fn sssp_takes_shorter_of_two_paths() {
        let g = Csr::from_edges(
            4,
            &[
                Edge::new(0, 1, 10.0),
                Edge::new(0, 2, 1.0),
                Edge::new(2, 1, 2.0),
                Edge::new(1, 3, 1.0),
            ],
        );
        let s = solve(&Algo::sssp(0), &g);
        assert_eq!(s.states[1], 3.0);
        assert_eq!(s.parents[1], 2);
        assert_eq!(s.states[3], 4.0);
    }

    #[test]
    fn sssp_unreachable_stays_infinite() {
        let g = Csr::from_edges(3, &[Edge::new(0, 1, 1.0)]);
        let s = solve(&Algo::sssp(0), &g);
        assert!(s.states[2].is_infinite());
        assert_eq!(s.parents[2], NO_PARENT);
    }

    #[test]
    fn cc_labels_min_over_reachability() {
        // 0 -> 1 -> 2 and isolated 3.
        let s = solve(&Algo::cc(), &chain());
        assert_eq!(s.states, vec![0.0, 0.0, 0.0, 0.0]);
        let g = Csr::from_edges(4, &[Edge::new(2, 3, 1.0)]);
        let s = solve(&Algo::cc(), &g);
        assert_eq!(s.states, vec![0.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn pagerank_sums_match_closed_form_on_cycle() {
        // 2-cycle: r = (1-d) + d*r  =>  r = 1 for both vertices.
        let g = Csr::from_edges(2, &[Edge::new(0, 1, 1.0), Edge::new(1, 0, 1.0)]);
        let s = solve(&Algo::pagerank(), &g);
        assert!((s.states[0] - 1.0).abs() < 1e-2, "r0 = {}", s.states[0]);
        assert!((s.states[1] - 1.0).abs() < 1e-2);
        // Residuals are converged.
        assert!(s.residuals.iter().all(|r| r.abs() < Algo::pagerank().epsilon()));
    }

    #[test]
    fn pagerank_sink_keeps_base_only_neighbors() {
        // 0 -> 1: r0 = 0.15, r1 = 0.15 + 0.85*0.15.
        let g = Csr::from_edges(2, &[Edge::new(0, 1, 1.0)]);
        let s = solve(&Algo::pagerank(), &g);
        assert!((s.states[0] - 0.15).abs() < 1e-3);
        assert!((s.states[1] - (0.15 + 0.85 * 0.15)).abs() < 1e-3);
    }

    #[test]
    fn adsorption_respects_weights() {
        // Seed at 0 (stride 16); edges 0->1 (heavy), 0->2 (light).
        let g = Csr::from_edges(3, &[Edge::new(0, 1, 9.0), Edge::new(0, 2, 1.0)]);
        let s = solve(&Algo::adsorption(), &g);
        assert!(s.states[1] > s.states[2]);
        assert!(s.states[0] > 0.0);
    }

    #[test]
    fn out_mass_matches_algorithm() {
        let g = Csr::from_edges(2, &[Edge::new(0, 1, 3.0)]);
        assert_eq!(out_mass(&Algo::pagerank(), &g), vec![1.0, 0.0]);
        assert_eq!(out_mass(&Algo::adsorption(), &g), vec![3.0, 0.0]);
    }

    #[test]
    fn empty_graph_solutions() {
        let g = Csr::from_edges(0, &[]);
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            let s = solve(&algo, &g);
            assert!(s.states.is_empty());
        }
    }
}
