//! Correctness oracle helpers.
//!
//! Incremental engines are validated against the from-scratch solver. For
//! monotonic algorithms the comparison is exact (modulo infinities); for
//! accumulative algorithms a relative tolerance absorbs residual-threshold
//! and f32 rounding differences.

use crate::traits::{Algo, AlgorithmKind};

/// Comparison outcome.
///
/// Marked `#[non_exhaustive]`: this enum crosses the service boundary,
/// so downstream matches must keep a wildcard arm for outcomes added in
/// later releases.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyOutcome {
    /// All states matched within tolerance.
    Match,
    /// First mismatch found.
    Mismatch {
        /// Vertex of the first mismatch.
        vertex: usize,
        /// Value from the incremental computation.
        got: f32,
        /// Oracle value.
        want: f32,
    },
    /// The two state vectors have different lengths.
    LengthMismatch {
        /// Incremental length.
        got: usize,
        /// Oracle length.
        want: usize,
    },
    /// The comparison was not performed (oracle disabled).
    Skipped,
}

impl VerifyOutcome {
    /// Whether the comparison succeeded. A skipped comparison is not a
    /// match: it carries no evidence either way.
    #[must_use]
    pub fn is_match(&self) -> bool {
        matches!(self, VerifyOutcome::Match)
    }
}

/// Default tolerance for an algorithm category.
#[must_use]
pub fn tolerance(algo: &Algo) -> f32 {
    match algo.kind() {
        AlgorithmKind::Monotonic => 1e-6,
        // Residual cutoffs leave up to ~ε/(1-α) of unpropagated mass.
        AlgorithmKind::Accumulative => 0.02,
    }
}

/// Compares incremental states against the oracle.
#[must_use]
pub fn compare(algo: &Algo, got: &[f32], want: &[f32]) -> VerifyOutcome {
    if got.len() != want.len() {
        return VerifyOutcome::LengthMismatch { got: got.len(), want: want.len() };
    }
    let tol = tolerance(algo);
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        if g.is_infinite() && w.is_infinite() {
            continue;
        }
        if (g - w).abs() > tol + tol * w.abs() {
            return VerifyOutcome::Mismatch { vertex: i, got: g, want: w };
        }
    }
    VerifyOutcome::Match
}

/// Maximum absolute difference between two state vectors, ignoring pairs
/// where both are infinite.
///
/// # Panics
///
/// Panics if the lengths differ.
#[must_use]
pub fn max_abs_diff(got: &[f32], want: &[f32]) -> f32 {
    assert_eq!(got.len(), want.len(), "state vectors must have equal length");
    got.iter()
        .zip(want)
        .filter(|(g, w)| !(g.is_infinite() && w.is_infinite()))
        .map(|(g, w)| (g - w).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_for_monotonic() {
        let algo = Algo::sssp(0);
        assert!(compare(&algo, &[0.0, 1.0], &[0.0, 1.0]).is_match());
        assert!(!compare(&algo, &[0.0, 1.0], &[0.0, 1.001]).is_match());
    }

    #[test]
    fn infinities_match_each_other() {
        let algo = Algo::sssp(0);
        assert!(compare(&algo, &[f32::INFINITY], &[f32::INFINITY]).is_match());
        assert!(!compare(&algo, &[f32::INFINITY], &[5.0]).is_match());
    }

    #[test]
    fn accumulative_tolerates_residual_noise() {
        let algo = Algo::pagerank();
        assert!(compare(&algo, &[1.0, 0.501], &[1.0, 0.5]).is_match());
    }

    #[test]
    fn length_mismatch_detected() {
        let algo = Algo::cc();
        assert_eq!(
            compare(&algo, &[0.0], &[0.0, 1.0]),
            VerifyOutcome::LengthMismatch { got: 1, want: 2 }
        );
    }

    #[test]
    fn mismatch_reports_first_vertex() {
        let algo = Algo::cc();
        match compare(&algo, &[0.0, 5.0, 9.0], &[0.0, 1.0, 9.0]) {
            VerifyOutcome::Mismatch { vertex, got, want } => {
                assert_eq!(vertex, 1);
                assert_eq!(got, 5.0);
                assert_eq!(want, 1.0);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn max_abs_diff_ignores_double_infinities() {
        let d = max_abs_diff(&[f32::INFINITY, 1.0], &[f32::INFINITY, 3.5]);
        assert_eq!(d, 2.5);
    }

    #[test]
    fn skipped_is_not_a_match() {
        assert!(!VerifyOutcome::Skipped.is_match());
        assert_ne!(VerifyOutcome::Skipped, VerifyOutcome::Match);
    }
}
