//! Algorithm definitions.
//!
//! The paper evaluates two algorithm categories (§2.1): *accumulative*
//! (Incremental PageRank, Adsorption — state updates are sums) and
//! *monotonic* (SSSP, CC — state updates are selections such as min).
//! [`Algo`] is a closed enum over the four benchmarks; engines stay generic
//! by dispatching through its category-specific methods.

use tdgraph_graph::types::{VertexId, Weight};

/// The paper's two incremental-computation categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Sum-style updates with cancel-first deletion handling.
    Accumulative,
    /// Selection-style (min) updates with tag/reset deletion handling.
    Monotonic,
}

/// Single-source shortest paths (monotonic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sssp {
    /// Root vertex of the shortest-path tree.
    pub source: VertexId,
}

/// Connected components via min-label propagation (monotonic).
///
/// On a directed snapshot this computes the fixpoint of
/// `label[v] = min(v, min over in-edges (u,v) of label[u])`, the same
/// definition KickStarter uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cc;

/// Incremental PageRank (accumulative), in the unnormalized
/// `r = (1-d) + d * Σ r_u / deg(u)` formulation with residual propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRank {
    /// Damping factor `d` (default 0.85).
    pub damping: f32,
    /// Residual convergence threshold (default 1e-4).
    pub epsilon: f32,
}

impl Default for PageRank {
    fn default() -> Self {
        Self { damping: 0.85, epsilon: 1e-4 }
    }
}

/// Adsorption-style weighted label propagation (accumulative):
/// `s[v] = seed(v)·(1-α) + α · Σ s[u] · w_uv / W_out(u)`.
///
/// Seeds are placed on every `seed_stride`-th vertex, a synthetic stand-in
/// for the labeled entities of the original algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adsorption {
    /// Continuation probability α (default 0.8).
    pub alpha: f32,
    /// Every `seed_stride`-th vertex carries injection mass 1.
    pub seed_stride: u32,
    /// Residual convergence threshold.
    pub epsilon: f32,
}

impl Default for Adsorption {
    fn default() -> Self {
        Self { alpha: 0.8, seed_stride: 16, epsilon: 1e-4 }
    }
}

/// A benchmark algorithm (closed enum; see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// Single-source shortest paths.
    Sssp(Sssp),
    /// Connected components.
    Cc(Cc),
    /// Incremental PageRank.
    PageRank(PageRank),
    /// Adsorption.
    Adsorption(Adsorption),
}

impl Algo {
    /// SSSP from `source` with default parameters.
    #[must_use]
    pub fn sssp(source: VertexId) -> Self {
        Algo::Sssp(Sssp { source })
    }

    /// Connected components.
    #[must_use]
    pub fn cc() -> Self {
        Algo::Cc(Cc)
    }

    /// PageRank with default parameters.
    #[must_use]
    pub fn pagerank() -> Self {
        Algo::PageRank(PageRank::default())
    }

    /// Adsorption with default parameters.
    #[must_use]
    pub fn adsorption() -> Self {
        Algo::Adsorption(Adsorption::default())
    }

    /// Short display name matching the paper's benchmark labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Sssp(_) => "SSSP",
            Algo::Cc(_) => "CC",
            Algo::PageRank(_) => "PageRank",
            Algo::Adsorption(_) => "Adsorption",
        }
    }

    /// Category (§2.1).
    #[must_use]
    pub fn kind(&self) -> AlgorithmKind {
        match self {
            Algo::Sssp(_) | Algo::Cc(_) => AlgorithmKind::Monotonic,
            Algo::PageRank(_) | Algo::Adsorption(_) => AlgorithmKind::Accumulative,
        }
    }

    // ---- Monotonic interface -------------------------------------------

    /// Initial (worst) state of vertex `v` before any relaxation.
    ///
    /// # Panics
    ///
    /// Panics when called on an accumulative algorithm.
    #[must_use]
    pub fn mono_init(&self, v: VertexId) -> f32 {
        match self {
            Algo::Sssp(s) => {
                if v == s.source {
                    0.0
                } else {
                    f32::INFINITY
                }
            }
            Algo::Cc(_) => v as f32,
            _ => panic!("mono_init on accumulative algorithm {}", self.name()),
        }
    }

    /// Candidate state `dst` receives along an edge from a source with
    /// state `src_state` and weight `weight`.
    ///
    /// # Panics
    ///
    /// Panics when called on an accumulative algorithm.
    #[must_use]
    pub fn mono_propagate(&self, src_state: f32, weight: Weight) -> f32 {
        match self {
            Algo::Sssp(_) => src_state + weight,
            Algo::Cc(_) => src_state,
            _ => panic!("mono_propagate on accumulative algorithm {}", self.name()),
        }
    }

    /// Whether `candidate` improves on `current` (strict, so fixpoints
    /// terminate).
    #[must_use]
    pub fn mono_better(&self, candidate: f32, current: f32) -> bool {
        candidate < current
    }

    // ---- Accumulative interface ----------------------------------------

    /// Injection (base) mass of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when called on a monotonic algorithm.
    #[must_use]
    pub fn acc_base(&self, v: VertexId) -> f32 {
        match self {
            Algo::PageRank(p) => 1.0 - p.damping,
            Algo::Adsorption(a) => {
                if v.is_multiple_of(a.seed_stride) {
                    1.0 - a.alpha
                } else {
                    0.0
                }
            }
            _ => panic!("acc_base on monotonic algorithm {}", self.name()),
        }
    }

    /// Mass an edge of weight `w` carries when splitting a vertex's
    /// outgoing contribution (1 for PageRank, `w` for Adsorption).
    #[must_use]
    pub fn edge_mass(&self, w: Weight) -> f32 {
        match self {
            Algo::PageRank(_) => 1.0,
            Algo::Adsorption(_) => w,
            _ => 0.0,
        }
    }

    /// Scales a residual pushed from a vertex with total outgoing mass
    /// `out_mass` along an edge of weight `w`.
    ///
    /// # Panics
    ///
    /// Panics when called on a monotonic algorithm.
    #[must_use]
    pub fn acc_scale(&self, residual: f32, w: Weight, out_mass: f32) -> f32 {
        let (alpha, mass) = match self {
            Algo::PageRank(p) => (p.damping, 1.0),
            Algo::Adsorption(a) => (a.alpha, w),
            _ => panic!("acc_scale on monotonic algorithm {}", self.name()),
        };
        if out_mass <= 0.0 {
            0.0
        } else {
            alpha * residual * mass / out_mass
        }
    }

    /// Residual convergence threshold for accumulative algorithms, or the
    /// exact-zero threshold for monotonic ones.
    #[must_use]
    pub fn epsilon(&self) -> f32 {
        match self {
            Algo::PageRank(p) => p.epsilon,
            Algo::Adsorption(a) => a.epsilon,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_paper_categories() {
        assert_eq!(Algo::sssp(0).kind(), AlgorithmKind::Monotonic);
        assert_eq!(Algo::cc().kind(), AlgorithmKind::Monotonic);
        assert_eq!(Algo::pagerank().kind(), AlgorithmKind::Accumulative);
        assert_eq!(Algo::adsorption().kind(), AlgorithmKind::Accumulative);
    }

    #[test]
    fn sssp_init_and_propagate() {
        let a = Algo::sssp(3);
        assert_eq!(a.mono_init(3), 0.0);
        assert!(a.mono_init(0).is_infinite());
        assert_eq!(a.mono_propagate(2.0, 1.5), 3.5);
        assert!(a.mono_better(3.0, 4.0));
        assert!(!a.mono_better(4.0, 4.0));
    }

    #[test]
    fn cc_labels_start_as_ids_and_pass_through() {
        let a = Algo::cc();
        assert_eq!(a.mono_init(17), 17.0);
        assert_eq!(a.mono_propagate(5.0, 99.0), 5.0);
    }

    #[test]
    fn pagerank_base_and_scale() {
        let a = Algo::pagerank();
        assert!((a.acc_base(0) - 0.15).abs() < 1e-6);
        // Push 1.0 of residual over out-degree 4: 0.85/4 per edge.
        assert!((a.acc_scale(1.0, 1.0, 4.0) - 0.2125).abs() < 1e-6);
        assert_eq!(a.acc_scale(1.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn adsorption_seeds_on_stride() {
        let a = Algo::adsorption();
        assert!(a.acc_base(0) > 0.0);
        assert_eq!(a.acc_base(1), 0.0);
        assert_eq!(a.acc_base(16), a.acc_base(0));
        // Weighted split: weight counts.
        assert!(a.acc_scale(1.0, 2.0, 4.0) > a.acc_scale(1.0, 1.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "mono_init on accumulative")]
    fn wrong_category_panics() {
        let _ = Algo::pagerank().mono_init(0);
    }

    #[test]
    fn edge_mass_by_algorithm() {
        assert_eq!(Algo::pagerank().edge_mass(7.0), 1.0);
        assert_eq!(Algo::adsorption().edge_mass(7.0), 7.0);
    }
}
