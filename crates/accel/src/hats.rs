//! HATS (Mukkara et al., MICRO'18) behavioral model.
//!
//! HATS adds a hardware traversal scheduler per core that walks the graph
//! in bounded-depth-first order (BDFS), exploiting community structure so
//! consecutive edge fetches hit nearby data, and streams the scheduled
//! edges to the core. What it does *not* do is synchronize propagations
//! from multiple roots (no `Topology_List`) or coalesce vertex states —
//! TDGraph's two mechanisms. We model it as a depth-first worklist whose
//! structure fetches run on the accelerator timeline (latency hidden by the
//! traversal pipeline) while state reads/updates stay on the core.

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_engines::common::Frontier;
use tdgraph_engines::ctx::BatchCtx;
use tdgraph_engines::engine::Engine;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::address::Region;
use tdgraph_sim::stats::{Actor, Op, PhaseKind};

/// The HATS engine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hats;

impl Engine for Hats {
    fn name(&self) -> &'static str {
        "HATS"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let eps = algo.epsilon();
        // LIFO worklist = depth-first scheduling order.
        let mut work = Frontier::seeded(n, affected);
        while let Some(v) = work.pop() {
            let core = ctx.owner(v);
            // The BDFS unit fetches the schedule and structure data.
            ctx.machine.access(core, Actor::Accel, Region::ActiveVertices, u64::from(v), false);
            ctx.machine.access(core, Actor::Accel, Region::OffsetArray, u64::from(v), false);
            ctx.machine.compute(core, Actor::Accel, Op::ScheduleOp, 1);
            let (lo, hi) = ctx.graph.neighbor_range(v);
            match algo.kind() {
                AlgorithmKind::Monotonic => {
                    let s = ctx.read_state(core, Actor::Core, v);
                    if !s.is_finite() {
                        continue;
                    }
                    for i in lo..hi {
                        let (dst, w) = self.fetch_edge(ctx, core, i);
                        let cand = algo.mono_propagate(s, w);
                        let cur = ctx.read_state(core, Actor::Core, dst);
                        if algo.mono_better(cand, cur) {
                            ctx.write_state(core, Actor::Core, dst, cand);
                            ctx.write_parent(core, Actor::Core, dst, v);
                            if work.push(dst) {
                                ctx.machine.compute(core, Actor::Accel, Op::FrontierOp, 1);
                            }
                        }
                    }
                }
                AlgorithmKind::Accumulative => {
                    let r = ctx.read_residual(core, Actor::Core, v);
                    if r.abs() < eps {
                        continue;
                    }
                    ctx.write_residual(core, Actor::Core, v, 0.0);
                    let s = ctx.read_state(core, Actor::Core, v);
                    ctx.write_state(core, Actor::Core, v, s + r);
                    let mass = ctx.out_mass[v as usize];
                    if mass <= 0.0 {
                        continue;
                    }
                    for i in lo..hi {
                        let (dst, w) = self.fetch_edge(ctx, core, i);
                        let push = algo.acc_scale(r, w, mass);
                        let cur = ctx.read_residual(core, Actor::Core, dst);
                        ctx.write_residual(core, Actor::Core, dst, cur + push);
                        if (cur + push).abs() >= eps && work.push(dst) {
                            ctx.machine.compute(core, Actor::Accel, Op::FrontierOp, 1);
                        }
                    }
                }
            }
        }
        ctx.machine.end_phase(PhaseKind::Propagation);
    }
}

impl Hats {
    /// Structure fetch through the traversal unit; the core's update
    /// computation is charged separately.
    fn fetch_edge(&self, ctx: &mut BatchCtx<'_>, core: usize, i: usize) -> (VertexId, f32) {
        ctx.machine.access(core, Actor::Accel, Region::NeighborArray, i as u64, false);
        ctx.machine.access(core, Actor::Accel, Region::WeightArray, i as u64, false);
        ctx.note_edges(1);
        ctx.machine.compute(core, Actor::Core, Op::EdgeProcess, 1);
        ctx.graph.edge_at(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_algos::traits::Algo;
    use tdgraph_engines::testutil::{converges_to_oracle, converges_with_deletions};

    #[test]
    fn converges_on_all_algorithms() {
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            converges_to_oracle(&mut Hats, algo);
        }
    }

    #[test]
    fn converges_with_deletion_heavy_batches() {
        converges_with_deletions(&mut Hats, Algo::sssp(0));
    }
}
