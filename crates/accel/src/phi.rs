//! PHI (Mukkara et al., MICRO'19) behavioral model.
//!
//! PHI adds architectural support for commutative scatter updates: updates
//! are buffered and *combined in the private cache*, so repeated updates to
//! the same vertex coalesce locally and the coherence ping-pong of remote
//! writes disappears; combined values drain to the shared level lazily.
//! Both of the paper's benchmark categories are commutative (min for
//! monotonic, add for accumulative). PHI does not change the propagation
//! order, so the schedule-level redundancy remains; what shrinks is the
//! on-chip update traffic.
//!
//! Model: state/residual *writes* during a round touch only the private
//! hierarchy without invalidating remote sharers (read-access + a combine
//! op); at each synchronization point the per-round touched set drains with
//! one coherent write per vertex.

use std::collections::BTreeSet;

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_engines::common::Frontier;
use tdgraph_engines::ctx::BatchCtx;
use tdgraph_engines::engine::Engine;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::address::Region;
use tdgraph_sim::stats::{Actor, Op, PhaseKind};

/// The PHI engine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Phi;

impl Phi {
    /// A buffered commutative update: combines in the private cache
    /// (non-coherent read access + combine op) instead of a full write.
    fn buffered_update(ctx: &mut BatchCtx<'_>, core: usize, region: Region, index: u64) {
        ctx.machine.access(core, Actor::Core, region, index, false);
        ctx.machine.compute(core, Actor::Accel, Op::StateUpdate, 1);
    }
}

impl Engine for Phi {
    fn name(&self) -> &'static str {
        "PHI"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let eps = algo.epsilon();
        let mut frontier = Frontier::seeded(n, affected);
        while !frontier.is_empty() {
            let round = frontier.drain_all();
            let mut next = Frontier::new(n);
            let mut touched: BTreeSet<VertexId> = BTreeSet::new();
            for v in round {
                let core = ctx.owner(v);
                ctx.schedule_op(core, Actor::Core, 1);
                match algo.kind() {
                    AlgorithmKind::Monotonic => {
                        let s = ctx.read_state(core, Actor::Core, v);
                        if !s.is_finite() {
                            continue;
                        }
                        let (lo, hi) = ctx.read_offsets(core, Actor::Core, v);
                        for i in lo..hi {
                            let (dst, w) = ctx.read_edge(core, Actor::Core, i);
                            let cand = algo.mono_propagate(s, w);
                            let cur = ctx.state.states[dst as usize];
                            if algo.mono_better(cand, cur) {
                                Self::buffered_update(
                                    ctx,
                                    core,
                                    Region::VertexStates,
                                    u64::from(dst),
                                );
                                ctx.state.states[dst as usize] = cand;
                                ctx.note_state_write(dst);
                                ctx.state.parents[dst as usize] = v;
                                touched.insert(dst);
                                if next.push(dst) {
                                    ctx.frontier_op(core, Actor::Core, dst);
                                }
                            }
                        }
                    }
                    AlgorithmKind::Accumulative => {
                        let r = ctx.read_residual(core, Actor::Core, v);
                        if r.abs() < eps {
                            continue;
                        }
                        ctx.write_residual(core, Actor::Core, v, 0.0);
                        let s = ctx.read_state(core, Actor::Core, v);
                        ctx.write_state(core, Actor::Core, v, s + r);
                        let mass = ctx.out_mass[v as usize];
                        if mass <= 0.0 {
                            continue;
                        }
                        let (lo, hi) = ctx.read_offsets(core, Actor::Core, v);
                        for i in lo..hi {
                            let (dst, w) = ctx.read_edge(core, Actor::Core, i);
                            let push = algo.acc_scale(r, w, mass);
                            let cur = ctx.state.residuals[dst as usize];
                            Self::buffered_update(ctx, core, Region::AuxMeta, u64::from(dst));
                            ctx.state.residuals[dst as usize] = cur + push;
                            touched.insert(dst);
                            if (cur + push).abs() >= eps && next.push(dst) {
                                ctx.frontier_op(core, Actor::Core, dst);
                            }
                        }
                    }
                }
            }
            // Drain the combined updates coherently, once per vertex.
            for dst in touched {
                let core = ctx.owner(dst);
                let region = match algo.kind() {
                    AlgorithmKind::Monotonic => Region::VertexStates,
                    AlgorithmKind::Accumulative => Region::AuxMeta,
                };
                ctx.machine.access(core, Actor::Core, region, u64::from(dst), true);
            }
            ctx.machine.end_phase(PhaseKind::Propagation);
            frontier = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_algos::traits::Algo;
    use tdgraph_engines::testutil::{converges_to_oracle, converges_with_deletions};

    #[test]
    fn converges_on_all_algorithms() {
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            converges_to_oracle(&mut Phi, algo);
        }
    }

    #[test]
    fn converges_with_deletion_heavy_batches() {
        converges_with_deletions(&mut Phi, Algo::pagerank());
    }
}
