//! Minnow (Zhang et al., ASPLOS'18) behavioral model.
//!
//! Minnow pairs each core with a lightweight engine that (a) manages the
//! worklist in hardware (enqueue/dequeue off the critical path) and (b)
//! performs *worklist-directed prefetching*: it looks ahead at queued work
//! items and prefetches their vertex data, so the core finds its inputs in
//! the private cache. The propagation schedule itself stays Ligra-style
//! synchronous push — Minnow accelerates the mechanics, not the order, so
//! the redundant multi-arrival updates remain.

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_engines::common::Frontier;
use tdgraph_engines::ctx::BatchCtx;
use tdgraph_engines::engine::Engine;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::address::Region;
use tdgraph_sim::stats::{Actor, Op, PhaseKind};

/// The Minnow engine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Minnow;

impl Engine for Minnow {
    fn name(&self) -> &'static str {
        "Minnow"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let eps = algo.epsilon();
        let mut frontier = Frontier::seeded(n, affected);
        while !frontier.is_empty() {
            let round = frontier.drain_all();
            let mut next = Frontier::new(n);
            for v in round {
                let core = ctx.owner(v);
                // Worklist dequeue + lookahead prefetch of v's data by the
                // engine: state, offsets, and the neighbor run.
                ctx.machine.access(core, Actor::Accel, Region::Frontier, u64::from(v), false);
                ctx.machine.access(core, Actor::Accel, Region::VertexStates, u64::from(v), false);
                ctx.machine.access(core, Actor::Accel, Region::OffsetArray, u64::from(v), false);
                let (lo, hi) = ctx.graph.neighbor_range(v);
                for i in (lo..hi).step_by(16) {
                    ctx.machine.access(core, Actor::Accel, Region::NeighborArray, i as u64, false);
                }
                match algo.kind() {
                    AlgorithmKind::Monotonic => {
                        let s = ctx.read_state(core, Actor::Core, v);
                        if !s.is_finite() {
                            continue;
                        }
                        for i in lo..hi {
                            let (dst, w) = ctx.read_edge(core, Actor::Core, i);
                            let cand = algo.mono_propagate(s, w);
                            let cur = ctx.read_state(core, Actor::Core, dst);
                            if algo.mono_better(cand, cur) {
                                ctx.write_state(core, Actor::Core, dst, cand);
                                ctx.write_parent(core, Actor::Core, dst, v);
                                if next.push(dst) {
                                    // Enqueue handled by the engine.
                                    ctx.machine.access(
                                        core,
                                        Actor::Accel,
                                        Region::Frontier,
                                        u64::from(dst),
                                        true,
                                    );
                                    ctx.machine.compute(core, Actor::Accel, Op::FrontierOp, 1);
                                }
                            }
                        }
                    }
                    AlgorithmKind::Accumulative => {
                        let r = ctx.read_residual(core, Actor::Core, v);
                        if r.abs() < eps {
                            continue;
                        }
                        ctx.write_residual(core, Actor::Core, v, 0.0);
                        let s = ctx.read_state(core, Actor::Core, v);
                        ctx.write_state(core, Actor::Core, v, s + r);
                        let mass = ctx.out_mass[v as usize];
                        if mass <= 0.0 {
                            continue;
                        }
                        for i in lo..hi {
                            let (dst, w) = ctx.read_edge(core, Actor::Core, i);
                            let push = algo.acc_scale(r, w, mass);
                            let cur = ctx.read_residual(core, Actor::Core, dst);
                            ctx.write_residual(core, Actor::Core, dst, cur + push);
                            if (cur + push).abs() >= eps && next.push(dst) {
                                ctx.machine.access(
                                    core,
                                    Actor::Accel,
                                    Region::Frontier,
                                    u64::from(dst),
                                    true,
                                );
                                ctx.machine.compute(core, Actor::Accel, Op::FrontierOp, 1);
                            }
                        }
                    }
                }
            }
            ctx.machine.end_phase(PhaseKind::Propagation);
            frontier = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_algos::traits::Algo;
    use tdgraph_engines::testutil::{converges_to_oracle, converges_with_deletions};

    #[test]
    fn converges_on_all_algorithms() {
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            converges_to_oracle(&mut Minnow, algo);
        }
    }

    #[test]
    fn converges_with_deletion_heavy_batches() {
        converges_with_deletions(&mut Minnow, Algo::cc());
    }
}
