//! Area and power model (Table 3, §4.4).
//!
//! The paper synthesizes each accelerator's Verilog RTL at 14 nm and
//! reports per-engine power and area against the simulated core's TDP and
//! area. This reproduction replaces synthesis with a two-component
//! analytical model — buffer storage (Kbit) and synthesized logic (Kgate)
//! with common per-bit/per-gate coefficients — whose component inputs come
//! from each design's published structures (e.g. TDGraph's 4.8 Kbit
//! `Fetched Buffer` + 6.1 Kbit stack, §4.4). The coefficients are
//! calibrated once, globally, so the model lands on the paper's TDGraph
//! figures; every other row then follows from its own component counts.

/// Area per Kbit of SRAM buffer, mm² (14 nm-class register-file density).
pub const MM2_PER_KBIT: f64 = 0.000_45;
/// Area per Kgate of synthesized logic, mm².
pub const MM2_PER_KGATE: f64 = 0.000_22;
/// Dynamic + leakage power per Kbit under typical activity, mW.
pub const MW_PER_KBIT: f64 = 22.0;
/// Power per Kgate under typical activity, mW.
pub const MW_PER_KGATE: f64 = 10.7;
/// TDP of the simulated 64-core chip, W (the paper's %TDP base).
pub const CHIP_TDP_W: f64 = 190.0;
/// Area of one general-purpose core, mm² (the paper's %core base).
pub const CORE_AREA_MM2: f64 = 1.78;

/// Component inventory of one accelerator engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareBudget {
    /// Engine name.
    pub name: &'static str,
    /// SRAM buffer storage in Kbit.
    pub buffer_kbits: f64,
    /// Synthesized control/datapath logic in Kgate.
    pub logic_kgates: f64,
}

impl HardwareBudget {
    /// Estimated area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.buffer_kbits * MM2_PER_KBIT + self.logic_kgates * MM2_PER_KGATE
    }

    /// Estimated power in mW.
    #[must_use]
    pub fn power_mw(&self) -> f64 {
        self.buffer_kbits * MW_PER_KBIT + self.logic_kgates * MW_PER_KGATE
    }

    /// Power as a fraction of chip TDP (Table 3's %TDP column).
    #[must_use]
    pub fn tdp_fraction(&self) -> f64 {
        self.power_mw() / (CHIP_TDP_W * 1000.0)
    }

    /// Area as a fraction of one core (Table 3's %core column).
    #[must_use]
    pub fn core_fraction(&self) -> f64 {
        self.area_mm2() / CORE_AREA_MM2
    }
}

/// Values Table 3 publishes, for side-by-side comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCost {
    /// Power in mW.
    pub power_mw: f64,
    /// Area in mm².
    pub area_mm2: f64,
}

/// The five accelerators of Table 3: our component model next to the
/// paper's synthesis results.
#[must_use]
pub fn table3() -> Vec<(HardwareBudget, PaperCost)> {
    vec![
        (
            // HATS: small BDFS scheduler, one traversal stack.
            HardwareBudget { name: "HATS", buffer_kbits: 3.2, logic_kgates: 25.0 },
            PaperCost { power_mw: 425.0, area_mm2: 0.007 },
        ),
        (
            // Minnow: the largest buffers — hardware worklist queues.
            HardwareBudget { name: "Minnow", buffer_kbits: 18.0, logic_kgates: 42.0 },
            PaperCost { power_mw: 849.0, area_mm2: 0.017 },
        ),
        (
            // PHI: compact update-combining buffers in the cache hierarchy.
            HardwareBudget { name: "PHI", buffer_kbits: 4.4, logic_kgates: 27.0 },
            PaperCost { power_mw: 493.0, area_mm2: 0.008 },
        ),
        (
            // DepGraph: dependency-chain dispatch tables.
            HardwareBudget { name: "DepGraph", buffer_kbits: 8.2, logic_kgates: 33.0 },
            PaperCost { power_mw: 562.0, area_mm2: 0.011 },
        ),
        (
            // TDGraph: 4.8 Kbit Fetched Buffer + 6.1 Kbit stack (§4.4) +
            // TDTU/VSCU logic.
            HardwareBudget { name: "TDGraph", buffer_kbits: 4.8 + 6.1, logic_kgates: 36.0 },
            PaperCost { power_mw: 647.0, area_mm2: 0.013 },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdgraph_budget() -> HardwareBudget {
        table3().into_iter().find(|(b, _)| b.name == "TDGraph").unwrap().0
    }

    #[test]
    fn tdgraph_buffers_match_section_4_4() {
        assert!((tdgraph_budget().buffer_kbits - 10.9).abs() < 1e-9);
    }

    #[test]
    fn model_lands_near_paper_for_every_engine() {
        for (budget, paper) in table3() {
            let area_err = (budget.area_mm2() - paper.area_mm2).abs() / paper.area_mm2;
            let power_err = (budget.power_mw() - paper.power_mw).abs() / paper.power_mw;
            assert!(
                area_err < 0.25,
                "{}: model area {:.4} vs paper {:.4}",
                budget.name,
                budget.area_mm2(),
                paper.area_mm2
            );
            assert!(
                power_err < 0.25,
                "{}: model power {:.0} vs paper {:.0}",
                budget.name,
                budget.power_mw(),
                paper.power_mw
            );
        }
    }

    #[test]
    fn tdgraph_area_cost_is_below_one_percent_of_core() {
        let b = tdgraph_budget();
        assert!(b.core_fraction() < 0.01, "core fraction {}", b.core_fraction());
        assert!(b.tdp_fraction() < 0.005);
    }

    #[test]
    fn minnow_is_the_largest_engine() {
        let rows = table3();
        let minnow = rows.iter().find(|(b, _)| b.name == "Minnow").unwrap();
        for (b, _) in &rows {
            assert!(b.area_mm2() <= minnow.0.area_mm2() + 1e-12);
        }
    }
}
