//! Accelerator models for the TDGraph reproduction.
//!
//! * [`tdgraph`] — the paper's contribution: the per-core TDGraph engine
//!   (TDTU topology tracking + synchronized prefetching, VSCU hot-state
//!   coalescing), in hardware ([`tdgraph::TdGraph::hardware`]) and
//!   software-only ([`tdgraph::TdGraph::software`]) forms.
//! * [`hats`], [`minnow`], [`phi`], [`depgraph`] — the four comparator
//!   accelerators of §4.3, each modeled with exactly the mechanism its own
//!   paper proposes.
//! * [`jetstream`] — the event-driven streaming accelerators JetStream
//!   (±state coalescing) and GraphPulse (Figs 16–17).
//! * [`area`] — the Table 3 area/power component model.
//!
//! Every engine implements [`tdgraph_engines::engine::Engine`] and runs
//! under the same harness and oracle verification as the software systems.
//!
//! # Example
//!
//! ```
//! use tdgraph_accel::tdgraph::TdGraph;
//! use tdgraph_algos::traits::Algo;
//! use tdgraph_engines::config::RunConfig;
//! use tdgraph_graph::datasets::{Dataset, Sizing};
//!
//! # fn main() -> Result<(), tdgraph_engines::error::EngineError> {
//! let res = RunConfig::small().run(
//!     &mut TdGraph::hardware(),
//!     Algo::sssp(0),
//!     (Dataset::Amazon, Sizing::Tiny),
//! )?;
//! assert!(res.verify.is_match());
//! # Ok(())
//! # }
//! ```

pub mod area;
pub mod depgraph;
pub mod hats;
pub mod jetstream;
pub mod minnow;
pub mod phi;
pub mod tdgraph;

pub use depgraph::DepGraph;
pub use hats::Hats;
pub use jetstream::{GraphPulse, JetStream};
pub use minnow::Minnow;
pub use phi::Phi;
pub use tdgraph::{TdGraph, TdGraphConfig};
