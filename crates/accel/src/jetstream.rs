//! JetStream (Rahman et al., MICRO'21) and GraphPulse (MICRO'20) models.
//!
//! JetStream is an event-driven streaming-graph accelerator: updates and
//! their consequences circulate as `(vertex, value)` events through a
//! memory-backed event queue that the accelerator drains, reading the
//! vertex state, applying the event, and emitting events to out-neighbors.
//! Everything runs in the accelerator (cores idle), so per-event cost is
//! low — but events from different update roots remain temporally separate,
//! so the same redundancy TDGraph removes persists, and every event touches
//! the queue in memory (Fig 16's traffic).
//!
//! `JetStream::with_coalescing()` is the paper's "JetStream-with" variant
//! (Fig 17): the same engine with a VSCU-style hot-state cache bolted on.
//!
//! [`GraphPulse`] is the event-driven accelerator for *static* asynchronous
//! processing: it coalesces in-flight events to the same destination inside
//! its queues (fewer state touches, events mostly useful) but pays more
//! queue traffic per emitted event (the paper: "requires much more memory
//! accesses, although most prefetched data are useful").

use std::collections::VecDeque;

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_engines::ctx::BatchCtx;
use tdgraph_engines::engine::Engine;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::address::Region;
use tdgraph_sim::stats::{Actor, Op, PhaseKind};

use crate::tdgraph::vscu::Vscu;

/// The JetStream engine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct JetStream {
    coalescing: bool,
    /// GraphPulse-style in-queue event coalescing (dedup per destination).
    coalesce_queue: bool,
}

impl JetStream {
    /// Plain JetStream: every emitted event occupies its own queue slot —
    /// the redundancy of temporally-separate update streams persists.
    #[must_use]
    pub fn new() -> Self {
        Self { coalescing: false, coalesce_queue: false }
    }

    /// "JetStream-with": JetStream plus VSCU-style state coalescing.
    #[must_use]
    pub fn with_coalescing() -> Self {
        Self { coalescing: true, coalesce_queue: false }
    }

    fn graphpulse_inner() -> Self {
        Self { coalescing: false, coalesce_queue: true }
    }
}

impl Engine for JetStream {
    fn name(&self) -> &'static str {
        if self.coalescing {
            "JetStream-with"
        } else {
            "JetStream"
        }
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let eps = algo.epsilon();
        // Hot set for the optional coalescer: the top-degree vertices
        // (JetStream has no Topology_List to rank by).
        let capacity = (n / 200).max(1);
        let mut vscu = Vscu::new(n, capacity, self.coalescing);
        if self.coalescing {
            let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
            by_degree.sort_by_key(|&v| std::cmp::Reverse(ctx.graph.degree(v)));
            by_degree.truncate(capacity);
            vscu.set_hot(ctx.machine, 0, &by_degree);
        }

        // Event queue in memory; each entry costs a queue write + read.
        let mut queue: VecDeque<VertexId> = VecDeque::new();
        let mut queued = vec![false; n];
        for &v in affected {
            queue.push_back(v);
            queued[v as usize] = true;
            let core = ctx.owner(v);
            ctx.machine.access(core, Actor::Accel, Region::Frontier, u64::from(v), true);
        }
        while let Some(v) = queue.pop_front() {
            if self.coalesce_queue {
                queued[v as usize] = false;
            }
            let core = ctx.owner(v);
            ctx.machine.access(core, Actor::Accel, Region::Frontier, u64::from(v), false);
            ctx.machine.access(core, Actor::Accel, Region::OffsetArray, u64::from(v), false);
            ctx.machine.compute(core, Actor::Accel, Op::ScheduleOp, 1);
            let (lo, hi) = ctx.graph.neighbor_range(v);
            match algo.kind() {
                AlgorithmKind::Monotonic => {
                    let loc = vscu.locate(ctx.machine, core, Actor::Accel, v);
                    let (reg, idx) = Vscu::target(loc, v);
                    ctx.machine.access(core, Actor::Accel, reg, idx, false);
                    let s = ctx.state.states[v as usize];
                    if !s.is_finite() {
                        continue;
                    }
                    for i in lo..hi {
                        let (dst, w) = self.fetch_edge(ctx, core, i);
                        let cand = algo.mono_propagate(s, w);
                        let dloc = vscu.locate(ctx.machine, core, Actor::Accel, dst);
                        let (dreg, didx) = Vscu::target(dloc, dst);
                        ctx.machine.access(core, Actor::Accel, dreg, didx, false);
                        if algo.mono_better(cand, ctx.state.states[dst as usize]) {
                            ctx.machine.access(core, Actor::Accel, dreg, didx, true);
                            ctx.machine.compute(core, Actor::Accel, Op::StateUpdate, 1);
                            ctx.state.states[dst as usize] = cand;
                            ctx.note_state_write(dst);
                            ctx.state.parents[dst as usize] = v;
                            self.emit(ctx, core, dst, &mut queue, &mut queued);
                        }
                    }
                }
                AlgorithmKind::Accumulative => {
                    let r = {
                        ctx.machine.access(
                            core,
                            Actor::Accel,
                            Region::AuxMeta,
                            u64::from(v),
                            false,
                        );
                        ctx.state.residuals[v as usize]
                    };
                    if r.abs() < eps {
                        continue;
                    }
                    ctx.machine.access(core, Actor::Accel, Region::AuxMeta, u64::from(v), true);
                    ctx.state.residuals[v as usize] = 0.0;
                    let loc = vscu.locate(ctx.machine, core, Actor::Accel, v);
                    let (reg, idx) = Vscu::target(loc, v);
                    ctx.machine.access(core, Actor::Accel, reg, idx, true);
                    ctx.machine.compute(core, Actor::Accel, Op::StateUpdate, 1);
                    ctx.state.states[v as usize] += r;
                    ctx.note_state_write(v);
                    let mass = ctx.out_mass[v as usize];
                    if mass <= 0.0 {
                        continue;
                    }
                    for i in lo..hi {
                        let (dst, w) = self.fetch_edge(ctx, core, i);
                        let push = algo.acc_scale(r, w, mass);
                        ctx.machine.access(
                            core,
                            Actor::Accel,
                            Region::AuxMeta,
                            u64::from(dst),
                            false,
                        );
                        ctx.machine.access(
                            core,
                            Actor::Accel,
                            Region::AuxMeta,
                            u64::from(dst),
                            true,
                        );
                        ctx.state.residuals[dst as usize] += push;
                        if ctx.state.residuals[dst as usize].abs() >= eps {
                            self.emit(ctx, core, dst, &mut queue, &mut queued);
                        }
                    }
                }
            }
        }
        ctx.machine.end_phase(PhaseKind::Propagation);
        if self.coalescing {
            vscu.writeback(ctx.machine, 0);
            ctx.machine.end_phase(PhaseKind::Other);
        }
    }
}

impl JetStream {
    fn fetch_edge(&self, ctx: &mut BatchCtx<'_>, core: usize, i: usize) -> (VertexId, f32) {
        ctx.machine.access(core, Actor::Accel, Region::NeighborArray, i as u64, false);
        ctx.machine.access(core, Actor::Accel, Region::WeightArray, i as u64, false);
        ctx.note_edges(1);
        ctx.machine.compute(core, Actor::Accel, Op::EdgeProcess, 1);
        ctx.graph.edge_at(i)
    }

    fn emit(
        &self,
        ctx: &mut BatchCtx<'_>,
        core: usize,
        dst: VertexId,
        queue: &mut VecDeque<VertexId>,
        queued: &mut [bool],
    ) {
        // Every emitted event is written to the memory-backed queue.
        ctx.machine.access(core, Actor::Accel, Region::Frontier, u64::from(dst), true);
        ctx.machine.compute(core, Actor::Accel, Op::FrontierOp, 1);
        if self.coalesce_queue {
            // GraphPulse combines in-flight events to the same destination.
            if !queued[dst as usize] {
                queued[dst as usize] = true;
                queue.push_back(dst);
            }
        } else {
            queue.push_back(dst);
        }
    }
}

/// The GraphPulse engine model: event-driven with in-queue coalescing.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphPulse;

impl Engine for GraphPulse {
    fn name(&self) -> &'static str {
        "GraphPulse"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        // GraphPulse coalesces events per destination inside its queues: the
        // dedup makes each drained event carry the combined value, but each
        // *emission* still costs queue traffic both ways (its documented
        // weakness: far more memory accesses, mostly useful).
        let mut inner = JetStream::graphpulse_inner();
        let n = ctx.graph.vertex_count();
        for &v in affected {
            // Extra coalescing-queue maintenance per initial event.
            let core = ctx.owner(v);
            ctx.machine.access(core, Actor::Accel, Region::Frontier, u64::from(v), true);
            ctx.machine.access(core, Actor::Accel, Region::Frontier, u64::from(v), false);
        }
        let _ = n;
        inner.process_batch(ctx, affected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_algos::traits::Algo;
    use tdgraph_engines::testutil::converges_to_oracle;

    #[test]
    fn jetstream_converges_on_all_algorithms() {
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            converges_to_oracle(&mut JetStream::new(), algo);
        }
    }

    #[test]
    fn jetstream_with_coalescing_converges() {
        converges_to_oracle(&mut JetStream::with_coalescing(), Algo::sssp(0));
        converges_to_oracle(&mut JetStream::with_coalescing(), Algo::pagerank());
    }

    #[test]
    fn graphpulse_converges() {
        converges_to_oracle(&mut GraphPulse, Algo::pagerank());
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(JetStream::new().name(), "JetStream");
        assert_eq!(JetStream::with_coalescing().name(), "JetStream-with");
        assert_eq!(GraphPulse.name(), "GraphPulse");
    }
}
