//! DepGraph (Zhang et al., HPCA'21) behavioral model.
//!
//! DepGraph accelerates iterative processing by *dependency-driven
//! dispatching*: from an active vertex it chases the chain of dependent
//! vertices depth-first, prefetching along the chain, so fresh values
//! propagate to the end of a dependency path within one dispatch instead of
//! one hop per iteration. That kills much of the staleness redundancy —
//! which is why the paper ranks it the strongest comparator (TDGraph still
//! beats it 2.3–6.1×, because chains from different roots are not
//! synchronized with each other and states are not coalesced).

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_engines::common::Frontier;
use tdgraph_engines::ctx::BatchCtx;
use tdgraph_engines::engine::Engine;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::address::Region;
use tdgraph_sim::stats::{Actor, Op, PhaseKind};

/// The DepGraph engine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct DepGraph;

impl Engine for DepGraph {
    fn name(&self) -> &'static str {
        "DepGraph"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let eps = algo.epsilon();
        let mut work = Frontier::seeded(n, affected);
        while let Some(start) = work.pop() {
            // Chase the dependency chain from `start`; the hardware
            // prefetches each next hop while the core processes the
            // current one.
            let mut v = start;
            loop {
                let core = ctx.owner(v);
                ctx.machine.access(core, Actor::Accel, Region::OffsetArray, u64::from(v), false);
                ctx.machine.compute(core, Actor::Accel, Op::ScheduleOp, 1);
                let (lo, hi) = ctx.graph.neighbor_range(v);
                let mut chase: Option<VertexId> = None;
                match algo.kind() {
                    AlgorithmKind::Monotonic => {
                        let s = ctx.read_state(core, Actor::Core, v);
                        if !s.is_finite() {
                            break;
                        }
                        for i in lo..hi {
                            let (dst, w) = self.fetch_edge(ctx, core, i);
                            let cand = algo.mono_propagate(s, w);
                            let cur = ctx.read_state(core, Actor::Core, dst);
                            if algo.mono_better(cand, cur) {
                                ctx.write_state(core, Actor::Core, dst, cand);
                                ctx.write_parent(core, Actor::Core, dst, v);
                                if chase.is_none() {
                                    chase = Some(dst);
                                } else if work.push(dst) {
                                    ctx.machine.compute(core, Actor::Accel, Op::FrontierOp, 1);
                                }
                            }
                        }
                    }
                    AlgorithmKind::Accumulative => {
                        let r = ctx.read_residual(core, Actor::Core, v);
                        if r.abs() < eps {
                            break;
                        }
                        ctx.write_residual(core, Actor::Core, v, 0.0);
                        let s = ctx.read_state(core, Actor::Core, v);
                        ctx.write_state(core, Actor::Core, v, s + r);
                        let mass = ctx.out_mass[v as usize];
                        if mass <= 0.0 {
                            break;
                        }
                        for i in lo..hi {
                            let (dst, w) = self.fetch_edge(ctx, core, i);
                            let push = algo.acc_scale(r, w, mass);
                            let cur = ctx.read_residual(core, Actor::Core, dst);
                            ctx.write_residual(core, Actor::Core, dst, cur + push);
                            if (cur + push).abs() >= eps {
                                if chase.is_none() {
                                    chase = Some(dst);
                                } else if work.push(dst) {
                                    ctx.machine.compute(core, Actor::Accel, Op::FrontierOp, 1);
                                }
                            }
                        }
                    }
                }
                match chase {
                    Some(next) => v = next,
                    None => break,
                }
            }
        }
        ctx.machine.end_phase(PhaseKind::Propagation);
    }
}

impl DepGraph {
    fn fetch_edge(&self, ctx: &mut BatchCtx<'_>, core: usize, i: usize) -> (VertexId, f32) {
        ctx.machine.access(core, Actor::Accel, Region::NeighborArray, i as u64, false);
        ctx.machine.access(core, Actor::Accel, Region::WeightArray, i as u64, false);
        ctx.note_edges(1);
        ctx.machine.compute(core, Actor::Core, Op::EdgeProcess, 1);
        ctx.graph.edge_at(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_algos::traits::Algo;
    use tdgraph_engines::testutil::{converges_to_oracle, converges_with_deletions};

    #[test]
    fn converges_on_all_algorithms() {
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            converges_to_oracle(&mut DepGraph, algo);
        }
    }

    #[test]
    fn converges_with_deletion_heavy_batches() {
        converges_with_deletions(&mut DepGraph, Algo::sssp(0));
    }
}
