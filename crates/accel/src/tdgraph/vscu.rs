//! Vertex States Coalescing Unit (§3.3.3).
//!
//! The VSCU redirects accesses to the states of the frequently-accessed
//! ("hot") vertices into the contiguous `Coalesced_States` array, indexed
//! through `H_Table`. Hot vertices are identified by the software per batch
//! from the `Topology_List` counts; their states migrate into coalesced
//! slots on first access and are written back to `Vertex_States_Array` when
//! the batch's processing ends.

use std::collections::HashMap;

use tdgraph_graph::types::VertexId;
use tdgraph_sim::address::Region;
use tdgraph_sim::machine::Machine;
use tdgraph_sim::stats::{Actor, Op};

/// Where a vertex's state currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateLoc {
    /// In `Vertex_States_Array[v]`.
    Direct,
    /// In `Coalesced_States[slot]`.
    Coalesced(u32),
}

/// The per-engine VSCU model.
#[derive(Debug, Clone)]
pub struct Vscu {
    enabled: bool,
    hot: Vec<bool>,
    slots: HashMap<VertexId, u32>,
    capacity: usize,
    hits: u64,
    installs: u64,
}

impl Vscu {
    /// Creates a VSCU for `n` vertices with `capacity` coalesced slots
    /// (α·|V| in the paper, §3.1).
    #[must_use]
    pub fn new(n: usize, capacity: usize, enabled: bool) -> Self {
        Self {
            enabled,
            hot: vec![false; n],
            slots: HashMap::new(),
            capacity: capacity.max(1),
            hits: 0,
            installs: 0,
        }
    }

    /// Whether coalescing is active (false models TDGraph-H-without).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of coalesced slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Installs the new hot set for a batch, charging the `Hot_Vertices`
    /// bitvector writes to `core`. Clears the previous slot assignment
    /// (callers must have written back first).
    pub fn set_hot(&mut self, machine: &mut Machine, core: usize, hot_vertices: &[VertexId]) {
        debug_assert!(self.slots.is_empty(), "set_hot before writeback loses states");
        self.hot.iter_mut().for_each(|h| *h = false);
        for &v in hot_vertices {
            self.hot[v as usize] = true;
            machine.access(core, Actor::Core, Region::HotVertices, u64::from(v), true);
        }
    }

    /// Resolves where `v`'s state lives, charging the lookup to
    /// `core`/`actor`: a `Hot_Vertices` read, then for hot vertices an
    /// `H_Table` probe and, on first touch, the migration of the state into
    /// a coalesced slot.
    pub fn locate(
        &mut self,
        machine: &mut Machine,
        core: usize,
        actor: Actor,
        v: VertexId,
    ) -> StateLoc {
        if !self.enabled {
            return StateLoc::Direct;
        }
        machine.access(core, actor, Region::HotVertices, u64::from(v), false);
        if !self.hot[v as usize] {
            return StateLoc::Direct;
        }
        // H_Table probe at the hashed slot.
        let table_index = u64::from(v) % ((self.capacity as f64 / 0.75).ceil() as u64).max(1);
        machine.access(core, actor, Region::HashTable, table_index, false);
        machine.compute(core, actor, Op::HashProbe, 1);
        if let Some(&slot) = self.slots.get(&v) {
            self.hits += 1;
            return StateLoc::Coalesced(slot);
        }
        if self.slots.len() >= self.capacity {
            return StateLoc::Direct;
        }
        // First access: migrate the state and create the table entry.
        let slot = self.slots.len() as u32;
        self.slots.insert(v, slot);
        self.installs += 1;
        machine.access(core, actor, Region::HashTable, table_index, true);
        machine.access(core, actor, Region::VertexStates, u64::from(v), false);
        machine.access(core, actor, Region::CoalescedStates, u64::from(slot), true);
        StateLoc::Coalesced(slot)
    }

    /// The region and element index for an access at `loc` of vertex `v`.
    #[must_use]
    pub fn target(loc: StateLoc, v: VertexId) -> (Region, u64) {
        match loc {
            StateLoc::Direct => (Region::VertexStates, u64::from(v)),
            StateLoc::Coalesced(slot) => (Region::CoalescedStates, u64::from(slot)),
        }
    }

    /// Writes every coalesced state back to `Vertex_States_Array` (end of
    /// batch), charging the copies to `core`, and clears the slot map.
    pub fn writeback(&mut self, machine: &mut Machine, core: usize) {
        let mut entries: Vec<(VertexId, u32)> = self.slots.drain().collect();
        entries.sort_by_key(|&(_, slot)| slot);
        for (v, slot) in entries {
            machine.access(core, Actor::Core, Region::CoalescedStates, u64::from(slot), false);
            machine.access(core, Actor::Core, Region::VertexStates, u64::from(v), true);
        }
    }

    /// `H_Table` hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Slot installations so far.
    #[must_use]
    pub fn installs(&self) -> u64 {
        self.installs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_sim::address::AddressSpace;
    use tdgraph_sim::config::SimConfig;

    fn machine() -> Machine {
        Machine::new(SimConfig::small_test(), AddressSpace::layout(256, 1024, 16))
    }

    #[test]
    fn disabled_vscu_is_always_direct() {
        let mut m = machine();
        let mut v = Vscu::new(256, 16, false);
        assert_eq!(v.locate(&mut m, 0, Actor::Accel, 5), StateLoc::Direct);
        assert_eq!(m.stats().accesses, 0, "disabled VSCU must not charge accesses");
    }

    #[test]
    fn cold_vertex_is_direct_after_bit_check() {
        let mut m = machine();
        let mut v = Vscu::new(256, 16, true);
        v.set_hot(&mut m, 0, &[7]);
        assert_eq!(v.locate(&mut m, 0, Actor::Accel, 5), StateLoc::Direct);
    }

    #[test]
    fn hot_vertex_gets_a_stable_slot() {
        let mut m = machine();
        let mut v = Vscu::new(256, 16, true);
        v.set_hot(&mut m, 0, &[7, 9]);
        let a = v.locate(&mut m, 0, Actor::Accel, 7);
        let b = v.locate(&mut m, 0, Actor::Accel, 7);
        assert_eq!(a, b);
        assert!(matches!(a, StateLoc::Coalesced(_)));
        assert_eq!(v.installs(), 1);
        assert_eq!(v.hits(), 1);
        // Different hot vertex gets a different slot.
        let c = v.locate(&mut m, 0, Actor::Accel, 9);
        assert_ne!(a, c);
    }

    #[test]
    fn capacity_overflow_falls_back_to_direct() {
        let mut m = machine();
        let mut v = Vscu::new(256, 2, true);
        v.set_hot(&mut m, 0, &[1, 2, 3]);
        assert!(matches!(v.locate(&mut m, 0, Actor::Accel, 1), StateLoc::Coalesced(_)));
        assert!(matches!(v.locate(&mut m, 0, Actor::Accel, 2), StateLoc::Coalesced(_)));
        assert_eq!(v.locate(&mut m, 0, Actor::Accel, 3), StateLoc::Direct);
    }

    #[test]
    fn writeback_clears_slots_and_charges_copies() {
        let mut m = machine();
        let mut v = Vscu::new(256, 4, true);
        v.set_hot(&mut m, 0, &[1, 2]);
        v.locate(&mut m, 0, Actor::Accel, 1);
        v.locate(&mut m, 0, Actor::Accel, 2);
        let before = m.stats().accesses;
        v.writeback(&mut m, 0);
        assert_eq!(m.stats().accesses, before + 4, "2 reads + 2 writes expected");
        // Slots are reusable for the next batch.
        v.set_hot(&mut m, 0, &[5]);
        assert!(matches!(v.locate(&mut m, 0, Actor::Accel, 5), StateLoc::Coalesced(0)));
    }

    #[test]
    fn target_maps_locations_to_regions() {
        assert_eq!(Vscu::target(StateLoc::Direct, 9), (Region::VertexStates, 9));
        assert_eq!(Vscu::target(StateLoc::Coalesced(3), 9), (Region::CoalescedStates, 3));
    }
}
