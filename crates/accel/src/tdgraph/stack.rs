//! The TDTU's fixed-depth hardware stack (§3.3.2, Fig 8).
//!
//! Each level stores a visited vertex's id and the current/end offsets of
//! its unvisited edges (the modeled cache line of neighbor ids is implied
//! by the offsets). The depth is fixed in hardware (default 10; Fig 21
//! sweeps it): when the stack is full the traversal re-roots by marking the
//! boundary vertex active.

use tdgraph_graph::types::VertexId;

/// One stack level: a vertex mid-traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Level {
    /// The vertex at this level.
    pub vertex: VertexId,
    /// Flat index of the next unvisited edge.
    pub cursor: usize,
    /// One past the last edge of this vertex.
    pub end: usize,
    /// Value carried along the traversal: the vertex's state at expansion
    /// (monotonic) or the residual it is distributing (accumulative).
    pub carry: f32,
}

/// Error returned when pushing onto a full stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackFull;

/// The fixed-depth traversal stack.
#[derive(Debug, Clone)]
pub struct HardwareStack {
    depth: usize,
    levels: Vec<Level>,
    /// Number of times a push was refused (re-roots; Fig 21's cost driver).
    overflows: u64,
    /// Deepest fill level observed.
    high_water: usize,
}

impl HardwareStack {
    /// Creates a stack with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "stack depth must be positive");
        Self { depth, levels: Vec::with_capacity(depth), overflows: 0, high_water: 0 }
    }

    /// Configured depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current fill level.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the stack is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Whether another level fits.
    #[must_use]
    pub fn has_room(&self) -> bool {
        self.levels.len() < self.depth
    }

    /// Pushes a level.
    ///
    /// # Errors
    ///
    /// Returns [`StackFull`] (and counts an overflow) when at depth.
    pub fn push(&mut self, level: Level) -> Result<(), StackFull> {
        if self.levels.len() >= self.depth {
            self.overflows += 1;
            return Err(StackFull);
        }
        self.levels.push(level);
        self.high_water = self.high_water.max(self.levels.len());
        Ok(())
    }

    /// Pops the top level.
    pub fn pop(&mut self) -> Option<Level> {
        self.levels.pop()
    }

    /// Mutable view of the top level.
    pub fn top_mut(&mut self) -> Option<&mut Level> {
        self.levels.last_mut()
    }

    /// Whether `v` is currently on the stack. The hardware compares a
    /// fetched neighbor id against the (at most `depth`) resident vertex
    /// ids in one CAM lookup; the traversal uses this to recognize
    /// back-edges of cycles, which must not contribute to the
    /// synchronization counters (they would deadlock the topological
    /// gating — see DESIGN.md §5).
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        self.levels.iter().any(|l| l.vertex == v)
    }

    /// Times a push was refused by the depth bound.
    #[must_use]
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Deepest fill observed.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(v: VertexId) -> Level {
        Level { vertex: v, cursor: 0, end: 0, carry: 0.0 }
    }

    #[test]
    fn push_pop_lifo() {
        let mut s = HardwareStack::new(4);
        s.push(level(1)).unwrap();
        s.push(level(2)).unwrap();
        assert_eq!(s.pop().unwrap().vertex, 2);
        assert_eq!(s.pop().unwrap().vertex, 1);
        assert!(s.pop().is_none());
    }

    #[test]
    fn depth_bound_counts_overflows() {
        let mut s = HardwareStack::new(2);
        s.push(level(1)).unwrap();
        s.push(level(2)).unwrap();
        assert!(!s.has_room());
        assert_eq!(s.push(level(3)), Err(StackFull));
        assert_eq!(s.overflows(), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn high_water_tracks_deepest_fill() {
        let mut s = HardwareStack::new(8);
        s.push(level(1)).unwrap();
        s.push(level(2)).unwrap();
        s.pop();
        s.pop();
        assert_eq!(s.high_water(), 2);
    }

    #[test]
    fn top_mut_advances_cursor() {
        let mut s = HardwareStack::new(2);
        s.push(Level { vertex: 1, cursor: 5, end: 9, carry: 0.0 }).unwrap();
        s.top_mut().unwrap().cursor += 1;
        assert_eq!(s.pop().unwrap().cursor, 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_panics() {
        let _ = HardwareStack::new(0);
    }
}
