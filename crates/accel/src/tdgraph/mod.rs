//! The TDGraph accelerator model: TDTU + VSCU (§3).

pub mod config_regs;
pub mod engine;
pub mod fetched_buffer;
pub mod isa;
pub mod stack;
pub mod vscu;

pub use config_regs::{ConfigRegisters, SavedCursor};
pub use engine::{Mode, TdGraph, TdGraphConfig, TraversalStats};
pub use fetched_buffer::{FetchedBuffer, FetchedEdge};
pub use isa::{Instruction, InstructionTrace};
pub use stack::{HardwareStack, Level};
pub use vscu::{StateLoc, Vscu};
