//! The `Fetched Buffer` FIFO (§3.3.2).
//!
//! The TDTU enqueues prefetched edges (with the source/destination states
//! resolved through the VSCU); the paired core drains them via the
//! `TD_FETCH_EDGE` instruction. The paper sizes it at 4.8 Kbit; with
//! 160-bit entries (two ids, weight, two states) that is 30 entries. In the
//! simulator the core drains synchronously, so the buffer's role is
//! capacity accounting and occupancy statistics.

use tdgraph_graph::types::{VertexId, Weight};

/// One prefetched edge with its resolved endpoint states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchedEdge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight.
    pub weight: Weight,
    /// Source state at prefetch time.
    pub src_state: f32,
    /// Destination state at prefetch time.
    pub dst_state: f32,
}

/// Capacity of the paper's 4.8 Kbit buffer in 160-bit entries.
pub const PAPER_CAPACITY: usize = 30;

/// The FIFO between TDTU and core.
#[derive(Debug, Clone)]
pub struct FetchedBuffer {
    entries: std::collections::VecDeque<FetchedEdge>,
    capacity: usize,
    enqueued: u64,
    high_water: usize,
}

impl FetchedBuffer {
    /// Creates a buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            enqueued: 0,
            high_water: 0,
        }
    }

    /// Creates the paper-sized buffer.
    #[must_use]
    pub fn paper_sized() -> Self {
        Self::new(PAPER_CAPACITY)
    }

    /// Whether another entry fits.
    #[must_use]
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Enqueues a prefetched edge. Returns `false` (dropping nothing) when
    /// full — the caller must drain first.
    pub fn enqueue(&mut self, e: FetchedEdge) -> bool {
        if !self.has_room() {
            return false;
        }
        self.entries.push_back(e);
        self.enqueued += 1;
        self.high_water = self.high_water.max(self.entries.len());
        true
    }

    /// Dequeues the oldest entry (`TD_FETCH_EDGE`).
    pub fn dequeue(&mut self) -> Option<FetchedEdge> {
        self.entries.pop_front()
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries ever enqueued.
    #[must_use]
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Peak occupancy.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl Default for FetchedBuffer {
    fn default() -> Self {
        Self::paper_sized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: VertexId) -> FetchedEdge {
        FetchedEdge { src, dst: src + 1, weight: 1.0, src_state: 0.0, dst_state: 1.0 }
    }

    #[test]
    fn fifo_order() {
        let mut b = FetchedBuffer::new(4);
        assert!(b.enqueue(edge(1)));
        assert!(b.enqueue(edge(2)));
        assert_eq!(b.dequeue().unwrap().src, 1);
        assert_eq!(b.dequeue().unwrap().src, 2);
        assert!(b.dequeue().is_none());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut b = FetchedBuffer::new(2);
        assert!(b.enqueue(edge(1)));
        assert!(b.enqueue(edge(2)));
        assert!(!b.enqueue(edge(3)), "enqueue past capacity must fail");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn statistics_track_usage() {
        let mut b = FetchedBuffer::new(4);
        b.enqueue(edge(1));
        b.enqueue(edge(2));
        b.dequeue();
        b.enqueue(edge(3));
        assert_eq!(b.total_enqueued(), 3);
        assert_eq!(b.high_water(), 2);
    }

    #[test]
    fn paper_capacity_matches_4_8_kbit() {
        assert_eq!(PAPER_CAPACITY, 4800 / 160);
        assert_eq!(FetchedBuffer::paper_sized().capacity, 30);
    }
}
