//! The ISA extension and low-level API surface of TDGraph (§3.2.2).
//!
//! TDGraph is a *programmable* accelerator: the software streaming-graph
//! system drives it through three primitives, each backed by an ISA
//! instruction —
//!
//! | API | instruction | effect |
//! |---|---|---|
//! | `TD_configure()` | `TD_CONFIGURE` | program the engine's register file ([`super::config_regs::ConfigRegisters`]) |
//! | `TD_fetch_edge()` | `TD_FETCH_EDGE` | dequeue one prefetched edge from the `Fetched Buffer` |
//! | `TD_update_state()` | `TD_UPDATE_STATE` | write a vertex state through the VSCU's addressing |
//!
//! This module defines the instruction encoding the simulator charges for
//! and a typed builder for instruction sequences, so traces of the
//! core↔engine interface can be inspected and tested.

use tdgraph_graph::types::VertexId;

/// One TDGraph ISA instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// `TD_CONFIGURE rbase`: program the memory-mapped register file from a
    /// configuration block at the given virtual address.
    Configure {
        /// Address of the configuration block (Fig 7 layout).
        block_addr: u64,
    },
    /// `TD_FETCH_EDGE rd`: pop the next prefetched edge; sets the zero flag
    /// when the buffer is empty and the traversal has finished.
    FetchEdge,
    /// `TD_UPDATE_STATE rv, rs`: write state `value` to vertex `vertex`
    /// through the VSCU (redirected to `Coalesced_States` when hot).
    UpdateState {
        /// Destination vertex.
        vertex: VertexId,
        /// New state value.
        value: f32,
    },
}

impl Instruction {
    /// Issue latency on the core in cycles: all three are single-issue
    /// register/queue operations; the memory work happens in the engine.
    #[must_use]
    pub fn core_cycles(&self) -> u64 {
        match self {
            // Writing the register file is a handful of stores.
            Instruction::Configure { .. } => 8,
            Instruction::FetchEdge | Instruction::UpdateState { .. } => 1,
        }
    }

    /// Mnemonic, as it would appear in a disassembly.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Configure { .. } => "TD_CONFIGURE",
            Instruction::FetchEdge => "TD_FETCH_EDGE",
            Instruction::UpdateState { .. } => "TD_UPDATE_STATE",
        }
    }
}

/// A recorded sequence of engine instructions (core↔engine interface
/// trace).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstructionTrace {
    ops: Vec<Instruction>,
}

impl InstructionTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction.
    pub fn record(&mut self, op: Instruction) {
        self.ops.push(op);
    }

    /// The recorded instructions.
    #[must_use]
    pub fn ops(&self) -> &[Instruction] {
        &self.ops
    }

    /// Total core cycles the recorded sequence issues for.
    #[must_use]
    pub fn total_core_cycles(&self) -> u64 {
        self.ops.iter().map(Instruction::core_cycles).sum()
    }

    /// Count of instructions with the given mnemonic.
    #[must_use]
    pub fn count(&self, mnemonic: &str) -> usize {
        self.ops.iter().filter(|op| op.mnemonic() == mnemonic).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_match_the_paper() {
        assert_eq!(Instruction::Configure { block_addr: 0 }.mnemonic(), "TD_CONFIGURE");
        assert_eq!(Instruction::FetchEdge.mnemonic(), "TD_FETCH_EDGE");
        assert_eq!(
            Instruction::UpdateState { vertex: 1, value: 0.5 }.mnemonic(),
            "TD_UPDATE_STATE"
        );
    }

    #[test]
    fn fetch_and_update_are_single_cycle() {
        assert_eq!(Instruction::FetchEdge.core_cycles(), 1);
        assert_eq!(Instruction::UpdateState { vertex: 0, value: 0.0 }.core_cycles(), 1);
        assert!(Instruction::Configure { block_addr: 4096 }.core_cycles() > 1);
    }

    #[test]
    fn trace_counts_and_sums() {
        let mut t = InstructionTrace::new();
        t.record(Instruction::Configure { block_addr: 4096 });
        for v in 0..4 {
            t.record(Instruction::FetchEdge);
            t.record(Instruction::UpdateState { vertex: v, value: 1.0 });
        }
        assert_eq!(t.count("TD_FETCH_EDGE"), 4);
        assert_eq!(t.count("TD_UPDATE_STATE"), 4);
        assert_eq!(t.count("TD_CONFIGURE"), 1);
        assert_eq!(t.total_core_cycles(), 8 + 8);
        assert_eq!(t.ops().len(), 9);
    }
}
