//! The TDGraph engine: topology-driven incremental execution (§3).
//!
//! Per batch it runs the two TDTU operations of §3.3.2 and the VSCU of
//! §3.3.3:
//!
//! 1. **Graph topology tracking** — depth-first traversal from every
//!    affected vertex over the new snapshot, marking edges visited and
//!    incrementing `Topology_List[dst]` per traversed edge. Afterwards each
//!    tracked vertex's counter equals the number of state propagations that
//!    must pass through it.
//! 2. **Hot-vertex identification** — the software ranks tracked vertices
//!    by their counters and installs the top α·|V| into `Hot_Vertices`
//!    (the VSCU coalesces their states).
//! 3. **Graph data prefetching / processing** — roots with counter 0 are
//!    taken from `Active_Vertices`; the TDTU walks the topology depth-first,
//!    prefetching each edge and its endpoint states (through the VSCU) into
//!    the `Fetched Buffer`, decrementing the destination counter, and
//!    descending when a counter reaches zero — so propagations from many
//!    roots merge and traverse common vertices once. The paired core drains
//!    the buffer (`TD_FETCH_EDGE`) and applies updates (`TD_UPDATE_STATE`).
//!    When the core would idle (cycles in the graph), the active vertex
//!    with the lowest counter is expanded (footnote 3 of the paper).
//!
//! [`Mode::Software`] runs the identical logic on the core timeline with
//! the §3.1 "Runtime Overhead" charges (data-dependent branches, software
//! hash probes) — this is TDGraph-S.

use std::collections::VecDeque;

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_engines::ctx::BatchCtx;
use tdgraph_engines::engine::Engine;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::address::Region;
use tdgraph_sim::stats::{Actor, Op, PhaseKind};

use super::fetched_buffer::{FetchedBuffer, FetchedEdge};
use super::stack::{HardwareStack, Level};
use super::vscu::Vscu;

/// Whether the topology-driven logic runs in the accelerator (TDGraph-H) or
/// as software on the cores (TDGraph-S).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Hardware TDTU/VSCU engines (TDGraph-H).
    Hardware,
    /// Software-only implementation (TDGraph-S).
    Software,
}

/// Configuration of a TDGraph engine instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdGraphConfig {
    /// Hardware or software execution.
    pub mode: Mode,
    /// Depth of the traversal stack (default 10; Fig 21 sweeps it).
    pub stack_depth: usize,
    /// Hot-vertex fraction α (default 0.5 %; Fig 22 sweeps it).
    pub alpha: f64,
    /// Whether the VSCU coalesces hot states (false = TDGraph-H-without).
    pub vscu_enabled: bool,
    /// `Fetched Buffer` capacity in entries.
    pub buffer_capacity: usize,
    /// Discovery-order DAG-ification of the synchronization counters
    /// (DESIGN.md §5 decision 4a). Disabling reverts to paper-literal
    /// counting of every tracked edge, which deadlocks on cycles and
    /// falls back to min-counter expansion — the `ablation` experiment
    /// measures the difference.
    pub dagify: bool,
    /// Defer re-activated vertices until the gated work drains
    /// (decision 4b), so one re-expansion batches many late arrivals.
    pub defer_reactivations: bool,
}

impl Default for TdGraphConfig {
    fn default() -> Self {
        Self {
            mode: Mode::Hardware,
            stack_depth: 10,
            alpha: 0.005,
            vscu_enabled: true,
            buffer_capacity: super::fetched_buffer::PAPER_CAPACITY,
            dagify: true,
            defer_reactivations: true,
        }
    }
}

/// Per-batch traversal statistics (exposed for the sensitivity studies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Edges traversed during topology tracking.
    pub tracked_edges: u64,
    /// Edges prefetched/processed during propagation.
    pub processed_edges: u64,
    /// Re-roots caused by the stack depth bound.
    pub stack_reroots: u64,
    /// Roots expanded through the idle-core minimum-counter fallback.
    pub fallback_roots: u64,
    /// Peak `Fetched Buffer` occupancy.
    pub buffer_high_water: usize,
}

/// The TDGraph engine (both TDGraph-H and TDGraph-S, per [`Mode`]).
#[derive(Debug, Clone)]
pub struct TdGraph {
    cfg: TdGraphConfig,
    stats: TraversalStats,
}

impl TdGraph {
    /// TDGraph-H with paper defaults.
    #[must_use]
    pub fn hardware() -> Self {
        Self::with_config(TdGraphConfig::default())
    }

    /// TDGraph-S: the software-only implementation.
    #[must_use]
    pub fn software() -> Self {
        Self::with_config(TdGraphConfig { mode: Mode::Software, ..TdGraphConfig::default() })
    }

    /// TDGraph-H-without: TDTU enabled, VSCU disabled (Fig 13).
    #[must_use]
    pub fn hardware_without_vscu() -> Self {
        Self::with_config(TdGraphConfig { vscu_enabled: false, ..TdGraphConfig::default() })
    }

    /// TDGraph-S-without: software, no coalescing (Fig 14).
    #[must_use]
    pub fn software_without_vscu() -> Self {
        Self::with_config(TdGraphConfig {
            mode: Mode::Software,
            vscu_enabled: false,
            ..TdGraphConfig::default()
        })
    }

    /// Custom configuration.
    #[must_use]
    pub fn with_config(cfg: TdGraphConfig) -> Self {
        assert!(cfg.stack_depth > 0, "stack depth must be positive");
        assert!((0.0..=1.0).contains(&cfg.alpha), "alpha must be in [0,1]");
        Self { cfg, stats: TraversalStats::default() }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TdGraphConfig {
        &self.cfg
    }

    /// Statistics of the most recent batch.
    #[must_use]
    pub fn traversal_stats(&self) -> &TraversalStats {
        &self.stats
    }

    fn actor(&self) -> Actor {
        match self.cfg.mode {
            Mode::Hardware => Actor::Accel,
            Mode::Software => Actor::Core,
        }
    }

    /// Per-traversal-step overhead: free pipeline stages in hardware, a
    /// data-dependent branch on the core in software (§3.1).
    fn step_overhead(&self, ctx: &mut BatchCtx<'_>, core: usize) {
        match self.cfg.mode {
            Mode::Hardware => ctx.machine.compute(core, Actor::Accel, Op::ScheduleOp, 1),
            Mode::Software => {
                ctx.machine.compute(core, Actor::Core, Op::ScheduleOp, 1);
                ctx.machine.compute(core, Actor::Core, Op::BranchMiss, 1);
            }
        }
    }
}

impl Engine for TdGraph {
    fn name(&self) -> &'static str {
        match (self.cfg.mode, self.cfg.vscu_enabled) {
            (Mode::Hardware, true) => "TDGraph-H",
            (Mode::Hardware, false) => "TDGraph-H-without",
            (Mode::Software, true) => "TDGraph-S",
            (Mode::Software, false) => "TDGraph-S-without",
        }
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        self.stats = TraversalStats::default();
        if affected.is_empty() {
            return;
        }
        let n = ctx.graph.vertex_count();

        // ---- Phase 1: graph topology tracking --------------------------
        let mut topology = vec![0u32; n];
        // Discovery timestamps assigned during tracking; 0 = undiscovered.
        // An edge contributes to its destination's counter only when the
        // source was discovered earlier, which makes the waits-for relation
        // acyclic — topological gating then never deadlocks on the graph's
        // cycles (DESIGN.md §5, decision 4).
        let mut discover = vec![0u32; n];
        let mut tracked: Vec<VertexId> = Vec::new();
        let mut is_seed = vec![false; n];
        for &v in affected {
            is_seed[v as usize] = true;
        }
        self.track_topology(ctx, affected, &is_seed, &mut topology, &mut discover, &mut tracked);
        ctx.machine.end_phase(PhaseKind::Other);

        // ---- Hot-vertex identification + VSCU setup --------------------
        let capacity = ((n as f64 * self.cfg.alpha).ceil() as usize).max(1);
        let mut vscu = Vscu::new(n, capacity, self.cfg.vscu_enabled);
        if self.cfg.vscu_enabled {
            let mut ranked = tracked.clone();
            for &v in &ranked {
                let core = ctx.owner(v);
                ctx.machine.access(core, Actor::Core, Region::TopologyList, u64::from(v), false);
                ctx.machine.compute(core, Actor::Core, Op::ScheduleOp, 1);
            }
            ranked.sort_by_key(|&v| std::cmp::Reverse(topology[v as usize]));
            ranked.truncate(capacity);
            vscu.set_hot(ctx.machine, 0, &ranked);
            ctx.machine.end_phase(PhaseKind::Other);
        }

        // ---- Phase 2: prefetch + synchronized processing ----------------
        self.propagate(ctx, affected, &mut topology, &discover, &mut vscu);
        ctx.machine.end_phase(PhaseKind::Propagation);

        // ---- Write coalesced states back (end of processing, §3.2.2) ----
        if self.cfg.vscu_enabled {
            vscu.writeback(ctx.machine, 0);
            ctx.machine.end_phase(PhaseKind::Other);
        }
    }
}

impl TdGraph {
    /// Tracking work is charged per edge to the core owning the traversed
    /// vertex's chunk: the 64 TDTUs each walk the edges of their own chunk
    /// (§3.3.2, "traverse the edges in this chunk") concurrently, so a
    /// logically global traversal lands on the owners' timelines. The
    /// traversal descends across chunk boundaries (the neighbor's TDTU
    /// continues it); only the depth bound re-roots.
    fn track_topology(
        &mut self,
        ctx: &mut BatchCtx<'_>,
        affected: &[VertexId],
        is_seed: &[bool],
        topology: &mut [u32],
        discover: &mut [u32],
        tracked: &mut Vec<VertexId>,
    ) {
        let actor = self.actor();
        let edge_count = ctx.graph.edge_count();
        let mut edge_visited = vec![false; edge_count];
        let mut fully_visited = vec![false; ctx.graph.vertex_count()];
        let mut queued = vec![false; ctx.graph.vertex_count()];
        let mut next_stamp: u32 = 0;
        let mut roots: VecDeque<VertexId> = VecDeque::new();
        for &v in affected {
            if !queued[v as usize] {
                queued[v as usize] = true;
                roots.push_back(v);
            }
        }
        let mut stack = HardwareStack::new(self.cfg.stack_depth);

        while let Some(root) = roots.pop_front() {
            if fully_visited[root as usize] {
                continue;
            }
            if discover[root as usize] == 0 {
                next_stamp += 1;
                discover[root as usize] = next_stamp;
            }
            let root_core = ctx.owner(root);
            let (lo, hi) = ctx.read_offsets(root_core, actor, root);
            stack
                .push(Level { vertex: root, cursor: lo, end: hi, carry: 0.0 })
                .expect("stack is empty at root push");
            while let Some(top) = stack.top_mut() {
                if top.cursor >= top.end {
                    let done = *top;
                    fully_visited[done.vertex as usize] = true;
                    stack.pop();
                    continue;
                }
                let i = top.cursor;
                let top_vertex = top.vertex;
                top.cursor += 1;
                let core = ctx.owner(top_vertex);
                ctx.machine.access(core, actor, Region::EdgeVisited, i as u64, false);
                if edge_visited[i] {
                    continue;
                }
                edge_visited[i] = true;
                self.stats.tracked_edges += 1;
                ctx.machine.access(core, actor, Region::EdgeVisited, i as u64, true);
                ctx.machine.access(core, actor, Region::NeighborArray, i as u64, false);
                let (dst, _w) = ctx.graph.edge_at(i);
                // Synchronize_Propagation: Topology_List[dst] += 1 — but
                // only for forward edges in discovery order. An edge whose
                // destination was discovered earlier than its source would
                // make dst wait on a propagation that can only run after
                // dst itself (a cycle): skipping it keeps the waits-for
                // relation acyclic.
                let v = top_vertex;
                let forward = !self.cfg.dagify
                    || discover[dst as usize] == 0
                    || discover[dst as usize] > discover[v as usize];
                if discover[dst as usize] == 0 {
                    next_stamp += 1;
                    discover[dst as usize] = next_stamp;
                }
                if forward {
                    ctx.machine.access(core, actor, Region::TopologyList, u64::from(dst), false);
                    ctx.machine.access(core, actor, Region::TopologyList, u64::from(dst), true);
                    if topology[dst as usize] == 0 {
                        tracked.push(dst);
                    }
                    topology[dst as usize] += 1;
                }
                self.step_overhead(ctx, core);
                if !forward {
                    continue;
                }
                // Descend unless the neighbor is an initial active vertex
                // (its own root) or already traversed.
                if is_seed[dst as usize] || fully_visited[dst as usize] {
                    continue;
                }
                let (dlo, dhi) = ctx.read_offsets(core, actor, dst);
                if stack.push(Level { vertex: dst, cursor: dlo, end: dhi, carry: 0.0 }).is_err() {
                    // Depth bound: re-root from this vertex later.
                    self.stats.stack_reroots += 1;
                    if !queued[dst as usize] {
                        queued[dst as usize] = true;
                        ctx.write_active(core, actor, dst);
                        roots.push_back(dst);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn propagate(
        &mut self,
        ctx: &mut BatchCtx<'_>,
        affected: &[VertexId],
        topology: &mut [u32],
        discover: &[u32],
        vscu: &mut Vscu,
    ) {
        let actor = self.actor();
        let algo = ctx.algo;
        let kind = algo.kind();
        let eps = algo.epsilon();
        let n = ctx.graph.vertex_count();
        let mut visited = vec![false; ctx.graph.edge_count()];
        let mut active = vec![false; n];
        let mut active_count = 0usize;
        let mut ready: VecDeque<VertexId> = VecDeque::new();
        // Re-activations (vertices that already forwarded their value once
        // and later received another propagation) wait here until the
        // gated work drains, so one re-expansion batches as many late
        // arrivals as possible — the wave behaviour of iterating over
        // `Active_Vertices` until no vertex remains active.
        let mut deferred: VecDeque<VertexId> = VecDeque::new();
        let mut stack = HardwareStack::new(self.cfg.stack_depth);
        let mut buffer = FetchedBuffer::new(self.cfg.buffer_capacity);

        for &v in affected {
            if !active[v as usize] {
                active[v as usize] = true;
                active_count += 1;
                ctx.write_active(ctx.owner(v), actor, v);
                if topology[v as usize] == 0 {
                    ready.push_back(v);
                }
            }
        }

        loop {
            // ---- Fetch_Root: pick the next root ------------------------
            let root = loop {
                match ready.pop_front() {
                    Some(r) if active[r as usize] => break Some(r),
                    Some(_) => continue,
                    None => break None,
                }
            };
            let root = match root {
                Some(r) => Some(r),
                None => loop {
                    match deferred.pop_front() {
                        Some(r) if active[r as usize] => break Some(r),
                        Some(_) => continue,
                        None => break None,
                    }
                },
            };
            let root = match root {
                Some(r) => Some(r),
                None if active_count > 0 => {
                    // Idle-core fallback: lowest Topology_List value wins.
                    let r = (0..n as VertexId)
                        .filter(|&v| active[v as usize])
                        .min_by_key(|&v| topology[v as usize]);
                    if let Some(r) = r {
                        // Bit-vector scan cost (one op per 16 scanned words).
                        let core = ctx.owner(r);
                        ctx.machine.compute(core, actor, Op::ScheduleOp, (n as u64 / 512).max(1));
                        self.stats.fallback_roots += 1;
                    }
                    r
                }
                None => None,
            };
            let Some(root) = root else { break };
            let root_core = ctx.owner(root);
            active[root as usize] = false;
            active_count -= 1;
            ctx.write_active(root_core, actor, root);

            let level = self.expand(ctx, vscu, root_core, root, kind, &mut visited);
            stack.push(level).expect("stack is empty at root expansion");

            // ---- Depth-first prefetch + processing ---------------------
            while let Some(top) = stack.top_mut() {
                if top.cursor >= top.end {
                    stack.pop();
                    continue;
                }
                let Level { vertex: v, cursor: i, carry, .. } = *top;
                top.cursor += 1;
                let core = ctx.owner(v);
                ctx.machine.access(core, actor, Region::EdgeVisited, i as u64, false);
                if visited[i] {
                    continue;
                }
                visited[i] = true;
                ctx.machine.access(core, actor, Region::EdgeVisited, i as u64, true);

                // Fetch_Neighbors + Fetch_States (prefetch through VSCU).
                ctx.machine.access(core, actor, Region::NeighborArray, i as u64, false);
                ctx.machine.access(core, actor, Region::WeightArray, i as u64, false);
                let (dst, w) = ctx.graph.edge_at(i);
                let dst_loc = vscu.locate(ctx.machine, core, actor, dst);
                let (dreg, didx) = Vscu::target(dst_loc, dst);
                ctx.machine.access(core, actor, dreg, didx, false);
                self.step_overhead(ctx, core);
                self.stats.processed_edges += 1;
                ctx.note_edges(1);

                // Queue for the core; the core drains synchronously.
                if !buffer.has_room() {
                    buffer.dequeue();
                }
                buffer.enqueue(FetchedEdge {
                    src: v,
                    dst,
                    weight: w,
                    src_state: carry,
                    dst_state: ctx.state.states[dst as usize],
                });
                buffer.dequeue();
                // TD_FETCH_EDGE + the update computation on the core.
                ctx.machine.add_cycles(core, Actor::Core, 1);
                ctx.machine.compute(core, Actor::Core, Op::EdgeProcess, 1);

                // Synchronize_Propagation: Topology_List[dst] -= 1 — for
                // exactly the forward (discovery-ordered) edges the
                // tracking pass counted; the state update itself still
                // applies below for every edge.
                let forward = !self.cfg.dagify
                    || discover[dst as usize] == 0
                    || discover[v as usize] == 0
                    || discover[dst as usize] > discover[v as usize];
                let before = if forward {
                    ctx.machine.access(core, actor, Region::TopologyList, u64::from(dst), false);
                    ctx.machine.access(core, actor, Region::TopologyList, u64::from(dst), true);
                    let b = topology[dst as usize];
                    topology[dst as usize] = b.saturating_sub(1);
                    b
                } else {
                    u32::MAX
                };

                // The core applies the update (TD_UPDATE_STATE).
                let improved = match kind {
                    AlgorithmKind::Monotonic => {
                        let cand = algo.mono_propagate(carry, w);
                        let cur = ctx.state.states[dst as usize];
                        ctx.machine.access(core, Actor::Core, dreg, didx, false);
                        if algo.mono_better(cand, cur) {
                            ctx.machine.access(core, Actor::Core, dreg, didx, true);
                            ctx.machine.compute(core, Actor::Core, Op::StateUpdate, 1);
                            ctx.state.states[dst as usize] = cand;
                            ctx.note_state_write(dst);
                            ctx.state.parents[dst as usize] = v;
                            ctx.machine.access(
                                core,
                                Actor::Core,
                                Region::AuxMeta,
                                u64::from(dst),
                                true,
                            );
                            true
                        } else {
                            false
                        }
                    }
                    AlgorithmKind::Accumulative => {
                        let push = algo.acc_scale(carry, w, ctx.out_mass[v as usize]);
                        if push != 0.0 {
                            let cur = ctx.read_residual(core, Actor::Core, dst);
                            ctx.write_residual(core, Actor::Core, dst, cur + push);
                            (cur + push).abs() >= eps
                        } else {
                            false
                        }
                    }
                };

                // Descend when all propagations through dst have arrived.
                if before == 1 {
                    if stack.has_room() {
                        if active[dst as usize] {
                            // It was waiting as a root; expansion covers it.
                            active[dst as usize] = false;
                            active_count -= 1;
                            ctx.write_active(core, actor, dst);
                        }
                        let level = self.expand(ctx, vscu, core, dst, kind, &mut visited);
                        stack.push(level).expect("room checked above");
                    } else {
                        // Stack full: the last visited vertex becomes a new
                        // active root (§3.3.2) and is expanded later —
                        // expansion side effects (residual application) must
                        // wait until then.
                        self.stats.stack_reroots += 1;
                        if !active[dst as usize] {
                            active[dst as usize] = true;
                            active_count += 1;
                            ctx.write_active(core, actor, dst);
                        }
                        ready.push_back(dst);
                    }
                } else if improved && !active[dst as usize] {
                    // dst received a propagation it must eventually forward
                    // but is not expandable right now — either it still
                    // waits for more inflows (counter > 0; a cycle may mean
                    // they never arrive, resolved by the idle-core
                    // fallback) or it was already expanded and this is a
                    // late improvement needing another wave. Mark it active
                    // so root selection picks it up (§3.3.2, footnotes 3–4).
                    active[dst as usize] = true;
                    active_count += 1;
                    ctx.write_active(core, actor, dst);
                    if topology[dst as usize] == 0 {
                        if self.cfg.defer_reactivations {
                            deferred.push_back(dst);
                        } else {
                            ready.push_back(dst);
                        }
                    }
                }
            }
        }
        self.stats.buffer_high_water = buffer.high_water();
    }

    /// Expands a vertex: fetches its offsets, resolves its state through
    /// the VSCU, and (accumulative) folds its pending residual into its
    /// state. Re-arms the vertex's out-edges (re-expansions must forward
    /// the fresh value; on first expansion this is a no-op). Returns the
    /// stack level carrying the propagation value.
    fn expand(
        &mut self,
        ctx: &mut BatchCtx<'_>,
        vscu: &mut Vscu,
        core: usize,
        v: VertexId,
        kind: AlgorithmKind,
        visited: &mut [bool],
    ) -> Level {
        let actor = self.actor();
        let (lo, hi) = ctx.read_offsets(core, actor, v);
        for slot in visited.iter_mut().take(hi).skip(lo) {
            *slot = false;
        }
        let loc = vscu.locate(ctx.machine, core, actor, v);
        let (reg, idx) = Vscu::target(loc, v);
        ctx.machine.access(core, actor, reg, idx, false);
        let carry = match kind {
            AlgorithmKind::Monotonic => ctx.state.states[v as usize],
            AlgorithmKind::Accumulative => {
                let r = ctx.read_residual(core, Actor::Core, v);
                // Same ε gate the software systems use: sub-threshold
                // residuals stay pending rather than being applied (they
                // may still accumulate past ε and re-activate the vertex).
                if r.abs() >= ctx.algo.epsilon() {
                    ctx.write_residual(core, Actor::Core, v, 0.0);
                    ctx.machine.access(core, Actor::Core, reg, idx, true);
                    ctx.machine.compute(core, Actor::Core, Op::StateUpdate, 1);
                    ctx.state.states[v as usize] += r;
                    ctx.note_state_write(v);
                    r
                } else {
                    0.0
                }
            }
        };
        Level { vertex: v, cursor: lo, end: hi, carry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_algos::traits::Algo;
    use tdgraph_engines::testutil::{converges_to_oracle, converges_with_deletions};

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(TdGraph::hardware().name(), "TDGraph-H");
        assert_eq!(TdGraph::software().name(), "TDGraph-S");
        assert_eq!(TdGraph::hardware_without_vscu().name(), "TDGraph-H-without");
        assert_eq!(TdGraph::software_without_vscu().name(), "TDGraph-S-without");
    }

    #[test]
    fn hardware_sssp_converges() {
        converges_to_oracle(&mut TdGraph::hardware(), Algo::sssp(0));
    }

    #[test]
    fn hardware_cc_converges() {
        converges_to_oracle(&mut TdGraph::hardware(), Algo::cc());
    }

    #[test]
    fn hardware_pagerank_converges() {
        converges_to_oracle(&mut TdGraph::hardware(), Algo::pagerank());
    }

    #[test]
    fn hardware_adsorption_converges() {
        converges_to_oracle(&mut TdGraph::hardware(), Algo::adsorption());
    }

    #[test]
    fn hardware_sssp_with_deletions_converges() {
        converges_with_deletions(&mut TdGraph::hardware(), Algo::sssp(0));
    }

    #[test]
    fn software_mode_converges() {
        converges_to_oracle(&mut TdGraph::software(), Algo::sssp(0));
        converges_to_oracle(&mut TdGraph::software(), Algo::pagerank());
    }

    #[test]
    fn without_vscu_converges() {
        converges_to_oracle(&mut TdGraph::hardware_without_vscu(), Algo::sssp(0));
    }

    #[test]
    fn tiny_stack_still_converges_via_reroots() {
        let mut e =
            TdGraph::with_config(TdGraphConfig { stack_depth: 2, ..TdGraphConfig::default() });
        converges_to_oracle(&mut e, Algo::sssp(0));
        converges_to_oracle(&mut e, Algo::cc());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = TdGraph::with_config(TdGraphConfig { alpha: 2.0, ..TdGraphConfig::default() });
    }
}
