//! The TDGraph engine's memory-mapped configuration registers (§3.3.1,
//! Fig 7).
//!
//! Like a DMA engine, each TDGraph engine is programmed by writing a
//! register file holding (a) the base address and size of every in-memory
//! structure it walks and (b) the vertex range of the chunk assigned to its
//! core. When the OS deschedules the owning thread, the engine is
//! *quiesced* and only `Start_v` — the resume cursor — is saved, because
//! the structure addresses are unchanged for the execution's lifetime;
//! rescheduling restores it (§3.3.1, "Configuration of TDGraph").

use tdgraph_graph::types::VertexId;
use tdgraph_sim::address::{AddressSpace, Region};

/// Base address and size of one configured structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionWindow {
    /// Base virtual address.
    pub base: u64,
    /// Element count.
    pub len: u64,
}

/// The per-engine register file of Fig 7.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigRegisters {
    offset_array: RegionWindow,
    neighbor_array: RegionWindow,
    vertex_states: RegionWindow,
    active_vertices: RegionWindow,
    hot_vertices: RegionWindow,
    topology_list: RegionWindow,
    coalesced_states: RegionWindow,
    h_table: RegionWindow,
    start_v: VertexId,
    end_v: VertexId,
    quiesced: bool,
}

/// State preserved across a quiesce (only the resume cursor, §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedCursor {
    /// `Start_v`: the next vertex/edge position to handle in the chunk.
    pub start_v: VertexId,
}

impl ConfigRegisters {
    /// Programs the register file from the process's address-space layout
    /// and the chunk `[start_v, end_v)` assigned to this core.
    ///
    /// # Panics
    ///
    /// Panics if the chunk range is inverted.
    #[must_use]
    pub fn program(
        layout: &AddressSpace,
        vertices: u64,
        edges: u64,
        coalesced_entries: u64,
        start_v: VertexId,
        end_v: VertexId,
    ) -> Self {
        assert!(start_v <= end_v, "chunk range is inverted");
        let win = |r: Region, len: u64| RegionWindow { base: layout.addr(r, 0), len };
        Self {
            offset_array: win(Region::OffsetArray, vertices + 1),
            neighbor_array: win(Region::NeighborArray, edges),
            vertex_states: win(Region::VertexStates, vertices),
            active_vertices: win(Region::ActiveVertices, vertices),
            hot_vertices: win(Region::HotVertices, vertices),
            topology_list: win(Region::TopologyList, vertices),
            coalesced_states: win(Region::CoalescedStates, coalesced_entries),
            h_table: win(Region::HashTable, (coalesced_entries as f64 / 0.75).ceil() as u64),
            start_v,
            end_v,
            quiesced: false,
        }
    }

    /// The chunk's current resume cursor.
    #[must_use]
    pub fn start_v(&self) -> VertexId {
        self.start_v
    }

    /// One past the last vertex of the chunk.
    #[must_use]
    pub fn end_v(&self) -> VertexId {
        self.end_v
    }

    /// Whether the engine is quiesced.
    #[must_use]
    pub fn is_quiesced(&self) -> bool {
        self.quiesced
    }

    /// Advances the resume cursor as processing progresses.
    ///
    /// # Panics
    ///
    /// Panics if the engine is quiesced or `v` leaves the chunk.
    pub fn advance(&mut self, v: VertexId) {
        assert!(!self.quiesced, "advance on a quiesced engine");
        assert!(v >= self.start_v && v <= self.end_v, "cursor {v} outside chunk");
        self.start_v = v;
    }

    /// Quiesces the engine for a descheduled thread, saving only the
    /// cursor — the structure windows are immutable during execution, so
    /// they are not part of the saved context.
    pub fn quiesce(&mut self) -> SavedCursor {
        self.quiesced = true;
        SavedCursor { start_v: self.start_v }
    }

    /// Resumes a quiesced engine from a saved cursor.
    ///
    /// # Panics
    ///
    /// Panics if the engine is not quiesced or the cursor is out of range.
    pub fn resume(&mut self, saved: SavedCursor) {
        assert!(self.quiesced, "resume on a running engine");
        assert!(
            saved.start_v <= self.end_v,
            "saved cursor {} beyond chunk end {}",
            saved.start_v,
            self.end_v
        );
        self.start_v = saved.start_v;
        self.quiesced = false;
    }

    /// The window of one configured structure.
    #[must_use]
    pub fn window(&self, region: Region) -> Option<RegionWindow> {
        match region {
            Region::OffsetArray => Some(self.offset_array),
            Region::NeighborArray => Some(self.neighbor_array),
            Region::VertexStates => Some(self.vertex_states),
            Region::ActiveVertices => Some(self.active_vertices),
            Region::HotVertices => Some(self.hot_vertices),
            Region::TopologyList => Some(self.topology_list),
            Region::CoalescedStates => Some(self.coalesced_states),
            Region::HashTable => Some(self.h_table),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs() -> ConfigRegisters {
        let layout = AddressSpace::layout(1024, 4096, 16);
        ConfigRegisters::program(&layout, 1024, 4096, 16, 100, 200)
    }

    #[test]
    fn program_fills_every_window() {
        let r = regs();
        for region in [
            Region::OffsetArray,
            Region::NeighborArray,
            Region::VertexStates,
            Region::ActiveVertices,
            Region::HotVertices,
            Region::TopologyList,
            Region::CoalescedStates,
            Region::HashTable,
        ] {
            let w = r.window(region).expect("configured window");
            assert!(w.base > 0 && w.len > 0, "{region:?}");
        }
        assert_eq!(r.window(Region::Frontier), None, "frontier is software-owned");
    }

    #[test]
    fn windows_match_the_address_space() {
        let layout = AddressSpace::layout(1024, 4096, 16);
        let r = ConfigRegisters::program(&layout, 1024, 4096, 16, 0, 10);
        assert_eq!(
            r.window(Region::VertexStates).unwrap().base,
            layout.addr(Region::VertexStates, 0)
        );
    }

    #[test]
    fn quiesce_saves_only_the_cursor_and_resume_restores_it() {
        let mut r = regs();
        r.advance(150);
        let saved = r.quiesce();
        assert!(r.is_quiesced());
        assert_eq!(saved.start_v, 150);
        r.resume(saved);
        assert!(!r.is_quiesced());
        assert_eq!(r.start_v(), 150);
    }

    #[test]
    #[should_panic(expected = "quiesced engine")]
    fn advance_while_quiesced_panics() {
        let mut r = regs();
        let _ = r.quiesce();
        r.advance(160);
    }

    #[test]
    #[should_panic(expected = "outside chunk")]
    fn cursor_cannot_leave_the_chunk() {
        let mut r = regs();
        r.advance(999);
    }

    #[test]
    #[should_panic(expected = "running engine")]
    fn resume_without_quiesce_panics() {
        let mut r = regs();
        r.resume(SavedCursor { start_v: 100 });
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_chunk_panics() {
        let layout = AddressSpace::layout(16, 16, 4);
        let _ = ConfigRegisters::program(&layout, 16, 16, 4, 10, 5);
    }
}
