//! Configuration validation for the accelerator models — these construct
//! engines below the `tdgraph::prelude` stability boundary, so they are
//! tested with the crate that owns them.

use tdgraph_accel::tdgraph::{TdGraph, TdGraphConfig};

#[test]
fn invalid_engine_configurations_panic() {
    assert!(std::panic::catch_unwind(|| {
        TdGraph::with_config(TdGraphConfig { alpha: -0.5, ..TdGraphConfig::default() })
    })
    .is_err());
    assert!(std::panic::catch_unwind(|| {
        TdGraph::with_config(TdGraphConfig { stack_depth: 0, ..TdGraphConfig::default() })
    })
    .is_err());
}
