//! Streaming SSSP walkthrough using the low-level substrate directly:
//! build a graph, compute the initial fixed point, stream update batches,
//! seed the incremental computation, and verify each snapshot against the
//! from-scratch oracle — the §2.1 life cycle, without the simulator.
//!
//! ```text
//! cargo run --release --example streaming_sssp
//! ```

use tdgraph::prelude::*;

fn main() {
    let StreamingWorkload { mut graph, pending, .. } =
        StreamingWorkload::prepare(Dataset::Dblp, Sizing::Small);
    let snapshot = graph.snapshot();
    let source =
        (0..snapshot.vertex_count() as VertexId).max_by_key(|&v| snapshot.degree(v)).unwrap_or(0);
    let algo = Algo::sssp(source);
    println!(
        "initial snapshot: {} vertices, {} edges, SSSP source = hub {}",
        snapshot.vertex_count(),
        snapshot.edge_count(),
        source
    );

    let mut state = AlgoState::from_solution(solve(&algo, &snapshot), snapshot.vertex_count());
    let reachable = state.states.iter().filter(|s| s.is_finite()).count();
    println!("initial fixed point: {reachable} reachable vertices");

    // Stream five mixed batches (75 % additions / 25 % deletions).
    let mut composer = BatchComposer::new(pending, 0.75, 42);
    for round in 1..=5 {
        let present = graph.edges_vec();
        let Some(batch) = composer.next_batch(512, &present) else {
            println!("update stream exhausted");
            break;
        };
        let applied = graph.apply_batch(&batch).expect("composer emits valid batches");
        let snapshot = graph.snapshot();
        let transpose = snapshot.transpose();
        let affected =
            seed_after_batch(&algo, &snapshot, &transpose, &mut state, &applied, &mut NullTap);

        // Reference propagation to the new fixpoint (what an engine does
        // with its own schedule).
        let mut queue: Vec<VertexId> = affected.clone();
        while let Some(v) = queue.pop() {
            let s = state.states[v as usize];
            if !s.is_finite() {
                continue;
            }
            for (n, w) in snapshot.out_edges(v) {
                let cand = algo.mono_propagate(s, w);
                if algo.mono_better(cand, state.states[n as usize]) {
                    state.states[n as usize] = cand;
                    state.parents[n as usize] = v;
                    queue.push(n);
                }
            }
        }

        let oracle = solve(&algo, &snapshot);
        let verdict = compare(&algo, &state.states, &oracle.states);
        println!(
            "batch {round}: {:>4} updates ({} adds / {} dels) -> {:>5} affected vertices, oracle: {}",
            batch.len(),
            batch.additions().count(),
            batch.deletions().count(),
            affected.len(),
            if verdict.is_match() { "match" } else { "MISMATCH" }
        );
        assert!(verdict.is_match(), "incremental result diverged: {verdict:?}");
    }
    println!("all snapshots matched the from-scratch oracle");
}
