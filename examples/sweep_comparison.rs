//! Sweep API + observability: run a dataset × engine grid across worker
//! threads with a JSON-lines trace sink on stderr and a merged metrics
//! snapshot, then print per-dataset speedups and sweep-wide totals.
//!
//! ```text
//! cargo run --release --example sweep_comparison
//! ```

use tdgraph::prelude::*;

fn main() {
    // Axes: 3 datasets × 1 algorithm (hub SSSP, the methodology default)
    // × 3 engines = 9 independent cells. Each cell carries its own fully
    // resolved options and seed, so the grid can run on any number of
    // threads and still produce the same numbers.
    let engines = [EngineKind::LigraO, EngineKind::TdGraphS, EngineKind::TdGraphH];
    let spec = SweepSpec::new()
        .datasets([Dataset::Amazon, Dataset::Dblp, Dataset::Gplus])
        .sizing(Sizing::Small)
        .engines(engines)
        .tune(|o| o.batches = 2);

    // Every progress event flows through the trace sink as a structured
    // TraceEvent rendered to one JSON line; `observe(true)` additionally
    // folds each cell's metrics into a deterministic merged snapshot.
    let report =
        SweepRunner::new().trace_sink(JsonlSink::new(std::io::stderr())).observe(true).run(&spec);
    report.assert_all_verified();

    println!(
        "{} cells in {:.2}s of simulation work",
        report.len(),
        report.total_wall().as_secs_f64()
    );
    println!("{:<6} {:<12} {:>12} {:>9}", "ds", "engine", "cycles", "speedup");
    // Expansion order puts each dataset's engines consecutively, with the
    // baseline first.
    for group in report.cells.chunks(engines.len()) {
        // `assert_all_verified` above guarantees every cell completed.
        let base = group[0].metrics().expect("cell completed").cycles.max(1);
        for cell in group {
            let m = cell.metrics().expect("cell completed");
            println!(
                "{:<6} {:<12} {:>12} {:>8.2}x",
                cell.cell.dataset.abbrev(),
                m.engine,
                m.cycles,
                base as f64 / m.cycles.max(1) as f64
            );
        }
    }

    // Sweep-wide totals from the merged observability snapshot. The
    // snapshot merges cells in index order, so these numbers are identical
    // no matter how many threads ran the sweep.
    let obs = report.obs.expect("observe(true) was set");
    println!(
        "totals: {} cycles, {} edges, {} state writes, {:.1} uJ across {} batches",
        obs.counter(keys::RUN_CYCLES),
        obs.counter(keys::EDGES_PROCESSED),
        obs.counter(keys::STATE_WRITES),
        (obs.gauge(keys::ENERGY_CORE_NJ).unwrap_or(0.0)
            + obs.gauge(keys::ENERGY_CACHE_NJ).unwrap_or(0.0)
            + obs.gauge(keys::ENERGY_NOC_NJ).unwrap_or(0.0)
            + obs.gauge(keys::ENERGY_DRAM_NJ).unwrap_or(0.0))
            / 1e3,
        obs.counter(keys::RUN_BATCHES)
    );
}
