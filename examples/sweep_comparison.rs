//! Sweep API: run a dataset × engine grid across worker threads with
//! JSON-lines progress on stderr, then print per-dataset speedups.
//!
//! ```text
//! cargo run --release --example sweep_comparison
//! ```

use tdgraph::graph::datasets::{Dataset, Sizing};
use tdgraph::{EngineKind, SweepRunner, SweepSpec};

fn main() {
    // Axes: 3 datasets × 1 algorithm (hub SSSP, the methodology default)
    // × 3 engines = 9 independent cells. Each cell carries its own fully
    // resolved options and seed, so the grid can run on any number of
    // threads and still produce the same numbers.
    let engines = [EngineKind::LigraO, EngineKind::TdGraphS, EngineKind::TdGraphH];
    let spec = SweepSpec::new()
        .datasets([Dataset::Amazon, Dataset::Dblp, Dataset::Gplus])
        .sizing(Sizing::Small)
        .engines(engines)
        .tune(|o| o.batches = 2);

    let report = SweepRunner::new()
        .progress_jsonl(std::io::stderr()) // one JSON line per event
        .run(&spec);
    report.assert_all_verified();

    println!(
        "{} cells in {:.2}s of simulation work",
        report.len(),
        report.total_wall().as_secs_f64()
    );
    println!("{:<6} {:<12} {:>12} {:>9}", "ds", "engine", "cycles", "speedup");
    // Expansion order puts each dataset's engines consecutively, with the
    // baseline first.
    for group in report.cells.chunks(engines.len()) {
        // `assert_all_verified` above guarantees every cell completed.
        let base = group[0].metrics().expect("cell completed").cycles.max(1);
        for cell in group {
            let m = cell.metrics().expect("cell completed");
            println!(
                "{:<6} {:<12} {:>12} {:>8.2}x",
                cell.cell.dataset.abbrev(),
                m.engine,
                m.cycles,
                base as f64 / m.cycles.max(1) as f64
            );
        }
    }
}
