//! Quickstart: run the TDGraph accelerator against the Ligra-o software
//! baseline on a small streaming SSSP workload and print the comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tdgraph::prelude::*;

fn main() {
    let experiment = Experiment::new(Dataset::Amazon).sizing(Sizing::Small);

    println!("running Ligra-o (software baseline) ...");
    let baseline = experiment.run(EngineKind::LigraO);
    println!("running TDGraph-H (the accelerator) ...");
    let tdgraph = experiment.run(EngineKind::TdGraphH);

    // Every run is verified against a from-scratch recomputation.
    assert!(baseline.verify.is_match(), "baseline diverged: {:?}", baseline.verify);
    assert!(tdgraph.verify.is_match(), "TDGraph diverged: {:?}", tdgraph.verify);

    let rows = build_rows(&[&baseline.metrics, &tdgraph.metrics]);
    print!("{}", render_table("SSSP on scaled com-Amazon (AZ)", &rows));
    println!("{}", speedup_line(&tdgraph.metrics, &baseline.metrics));
    println!(
        "energy: baseline {:.1} uJ vs TDGraph-H {:.1} uJ",
        baseline.metrics.energy.total_nj() / 1000.0,
        tdgraph.metrics.energy.total_nj() / 1000.0
    );
}
