//! Incremental PageRank demo (accumulative category, §2.1): shows the
//! cancel-and-redo deletion semantics and the redundancy metrics the paper
//! builds on — how many state updates the baseline wastes versus TDGraph.
//!
//! ```text
//! cargo run --release --example incremental_pagerank
//! ```

use tdgraph::prelude::*;

fn main() {
    // Deletion-heavy batches exercise the cancel-first rule.
    let experiment = Experiment::new(Dataset::LiveJournal)
        .sizing(Sizing::Small)
        .algorithm(Algo::pagerank())
        .tune(|o| {
            o.add_fraction = 0.5;
            o.batches = 3;
        });

    let baseline = experiment.run(EngineKind::LigraO);
    let tdgraph = experiment.run(EngineKind::TdGraphH);
    assert!(baseline.verify.is_match() && tdgraph.verify.is_match());

    println!("Incremental PageRank over scaled LiveJournal, 3 batches (50% deletions)\n");
    for m in [&baseline.metrics, &tdgraph.metrics] {
        println!("{}:", m.engine);
        println!("  cycles            {:>12}", m.cycles);
        println!("  state updates     {:>12}", m.state_updates);
        println!("  useful updates    {:>12}", m.useful_updates);
        println!("  useless ratio     {:>11.1}%", 100.0 * m.useless_update_ratio());
        println!("  useful state data {:>11.1}%", 100.0 * m.useful_state_ratio);
        println!("  LLC miss rate     {:>11.1}%", 100.0 * m.llc_miss_rate);
        println!();
    }
    println!(
        "TDGraph-H performs {:.1}% of the baseline's updates and runs {:.2}x faster",
        100.0 * tdgraph.metrics.state_updates as f64 / baseline.metrics.state_updates as f64,
        tdgraph.metrics.speedup_over(&baseline.metrics)
    );
}
