//! Running the reproduction on your own dataset: write/load a SNAP-format
//! edge list, build a streaming workload from it, and compare engines.
//!
//! With a real SNAP file (e.g. soc-LiveJournal1.txt) on disk, point
//! `LoadConfig::new().load(..)` at it instead of the generated file below.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use tdgraph::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Produce an edge list on disk (stand-in for your own dataset).
    let path = std::env::temp_dir().join("tdgraph_custom_dataset.txt");
    let generator = ClusteredRmat::new(RmatConfig::new(8, 6).with_seed(99), 6, 32);
    save_edge_list(&path, &generator.edges())?;
    println!("wrote {} (replace with your own SNAP file)", path.display());

    // 2. Load it back and inspect.
    let loaded = LoadConfig::new().load(&path)?.graph;
    println!(
        "loaded {} edges over {} vertices ({} comment lines skipped)",
        loaded.edges.len(),
        loaded.vertex_count,
        loaded.skipped_lines
    );

    // 3. Build the streaming workload (50% preloaded, rest streamed in).
    let workload = StreamingWorkload::from_edges(loaded.edges, loaded.vertex_count, 42);
    let snapshot = workload.initial_snapshot();
    let skew = degree_stats(&snapshot);
    println!(
        "initial snapshot: {} edges, gini {:.2}, top-1% share {:.1}%",
        snapshot.edge_count(),
        skew.gini,
        100.0 * skew.top1pct_edge_share
    );

    // 4. Run both engines over the same stream and compare.
    let algo = Algo::sssp(workload.hub_vertex());
    let opts = RunConfig { sim: SimConfig::scaled_reference(), batches: 3, ..RunConfig::default() };
    let rebuild = || {
        StreamingWorkload::from_edges(
            LoadConfig::new().load(&path).expect("file still present").graph.edges,
            loaded.vertex_count,
            42,
        )
    };

    let mut baseline = EngineKind::LigraO.try_build()?;
    let base = opts.run(baseline.as_mut(), algo, rebuild())?;
    let mut accel = EngineKind::TdGraphH.try_build()?;
    let tdg = opts.run(accel.as_mut(), algo, rebuild())?;
    assert!(base.verify.is_match() && tdg.verify.is_match());

    println!(
        "{}: {} cycles | {}: {} cycles  ->  {:.2}x",
        base.metrics.engine,
        base.metrics.cycles,
        tdg.metrics.engine,
        tdg.metrics.cycles,
        tdg.metrics.speedup_over(&base.metrics)
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
