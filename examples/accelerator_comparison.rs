//! Mini Fig 15: compare TDGraph-H against the four comparator accelerators
//! (HATS, Minnow, PHI, DepGraph) on one dataset, reporting speedup and
//! relative performance-per-watt.
//!
//! ```text
//! cargo run --release --example accelerator_comparison
//! ```

use tdgraph::prelude::*;

fn main() {
    let experiment = Experiment::new(Dataset::Dblp).sizing(Sizing::Small);

    let mut results = Vec::new();
    for kind in EngineKind::ACCELERATORS.into_iter().chain([EngineKind::TdGraphH]) {
        let res = experiment.run(kind);
        assert!(res.verify.is_match(), "{kind:?} diverged: {:?}", res.verify);
        println!("finished {}", res.metrics.engine);
        results.push(res);
    }

    let metrics: Vec<_> = results.iter().map(|r| &r.metrics).collect();
    print!("{}", render_table("SSSP on scaled com-DBLP — accelerators", &build_rows(&metrics)));

    // Fig 15's second panel: Perf/Watt normalized to HATS.
    let hats = &results[0].metrics;
    println!("\nPerf/Watt relative to HATS:");
    for r in &results {
        println!(
            "  {:<12} {:>6.2}x  (speedup {:.2}x, energy {:.1} uJ)",
            r.metrics.engine,
            r.metrics.perf_per_watt_over(hats),
            r.metrics.speedup_over(hats),
            r.metrics.energy.total_nj() / 1000.0
        );
    }
}
