//! Property-based tests: random graphs and random update streams must
//! preserve the core invariants — incremental == from-scratch for every
//! algorithm and engine category, CSR structural invariants, and batch
//! normalization rules.

use proptest::prelude::*;

use tdgraph::prelude::*;

const N: u32 = 24;

fn arb_edge() -> impl Strategy<Value = Edge> {
    (0..N, 0..N, 1u32..5)
        .prop_filter_map("no self-loops", |(s, d, w)| (s != d).then(|| Edge::new(s, d, w as f32)))
}

fn arb_graph_edges() -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec(arb_edge(), 0..80)
}

/// Reference propagation to the fixpoint from an affected set.
fn propagate(algo: &Algo, graph: &Csr, state: &mut AlgoState, affected: &[VertexId]) {
    let mass = out_mass(algo, graph);
    let eps = algo.epsilon();
    let mut queue: Vec<VertexId> = affected.to_vec();
    while let Some(v) = queue.pop() {
        match algo.kind() {
            AlgorithmKind::Monotonic => {
                let s = state.states[v as usize];
                if !s.is_finite() {
                    continue;
                }
                for (n, w) in graph.out_edges(v) {
                    let cand = algo.mono_propagate(s, w);
                    if algo.mono_better(cand, state.states[n as usize]) {
                        state.states[n as usize] = cand;
                        state.parents[n as usize] = v;
                        queue.push(n);
                    }
                }
            }
            AlgorithmKind::Accumulative => {
                let r = state.residuals[v as usize];
                if r.abs() < eps {
                    continue;
                }
                state.residuals[v as usize] = 0.0;
                state.states[v as usize] += r;
                if mass[v as usize] <= 0.0 {
                    continue;
                }
                for (n, w) in graph.out_edges(v) {
                    state.residuals[n as usize] += algo.acc_scale(r, w, mass[v as usize]);
                    if state.residuals[n as usize].abs() >= eps {
                        queue.push(n);
                    }
                }
            }
        }
    }
}

/// Builds a valid batch from raw proposals against the current graph:
/// additions of absent pairs, deletions of present pairs.
fn normalize_batch(graph: &StreamingGraph, proposals: &[(Edge, bool)]) -> UpdateBatch {
    let mut updates = Vec::new();
    let mut touched = std::collections::HashSet::new();
    for (e, is_add) in proposals {
        if !touched.insert((e.src, e.dst)) {
            continue;
        }
        if *is_add {
            updates.push(EdgeUpdate::addition(e.src, e.dst, e.weight));
        } else if graph.contains_edge(e.src, e.dst) {
            updates.push(EdgeUpdate::deletion(e.src, e.dst));
        }
    }
    UpdateBatch::from_updates(updates).expect("normalized batch is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_roundtrips_through_edge_iteration(edges in arb_graph_edges()) {
        let csr = Csr::from_edges(N as usize, &edges);
        let rebuilt = Csr::from_edges(N as usize, &csr.iter_edges().collect::<Vec<_>>());
        prop_assert_eq!(&csr, &rebuilt);
        prop_assert_eq!(csr.edge_count(), edges.len());
        // Transpose is an involution.
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn chunk_partitions_are_exact_covers(edges in arb_graph_edges(), chunks in 1usize..9) {
        let csr = Csr::from_edges(N as usize, &edges);
        let parts = partition_by_edges(&csr, chunks);
        let total: usize = parts.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, csr.vertex_count());
        let edge_total: usize = parts.iter().map(|c| c.edges).sum();
        prop_assert_eq!(edge_total, csr.edge_count());
    }

    #[test]
    fn incremental_matches_oracle_for_all_algorithms(
        initial in arb_graph_edges(),
        proposals in proptest::collection::vec((arb_edge(), any::<bool>()), 1..24),
    ) {
        let mut graph = StreamingGraph::with_capacity(N as usize);
        graph.insert_edges(initial.iter().copied()).unwrap();
        let snapshot = graph.snapshot();

        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            let mut g = graph.clone();
            let mut state =
                AlgoState::from_solution(solve(&algo, &snapshot), N as usize);
            let batch = normalize_batch(&g, &proposals);
            let applied = g.apply_batch(&batch).expect("normalized batch applies");
            let new_snapshot = g.snapshot();
            let transpose = new_snapshot.transpose();
            let affected = seed_after_batch(
                &algo, &new_snapshot, &transpose, &mut state, &applied, &mut NullTap,
            );
            propagate(&algo, &new_snapshot, &mut state, &affected);
            let oracle = solve(&algo, &new_snapshot);
            let verdict = compare(&algo, &state.states, &oracle.states);
            prop_assert!(
                verdict.is_match(),
                "{} diverged: {:?} (batch {:?})",
                algo.name(), verdict, batch
            );
        }
    }

    #[test]
    fn repeated_batches_stay_correct(
        initial in arb_graph_edges(),
        rounds in proptest::collection::vec(
            proptest::collection::vec((arb_edge(), any::<bool>()), 1..10), 1..4),
    ) {
        let algo = Algo::sssp(0);
        let mut graph = StreamingGraph::with_capacity(N as usize);
        graph.insert_edges(initial.iter().copied()).unwrap();
        let mut state =
            AlgoState::from_solution(solve(&algo, &graph.snapshot()), N as usize);
        for proposals in &rounds {
            let batch = normalize_batch(&graph, proposals);
            let applied = graph.apply_batch(&batch).expect("valid batch");
            let snapshot = graph.snapshot();
            let transpose = snapshot.transpose();
            let affected = seed_after_batch(
                &algo, &snapshot, &transpose, &mut state, &applied, &mut NullTap,
            );
            propagate(&algo, &snapshot, &mut state, &affected);
            let oracle = solve(&algo, &snapshot);
            prop_assert!(compare(&algo, &state.states, &oracle.states).is_match());
        }
    }

    #[test]
    fn degree_stats_are_internally_consistent(edges in arb_graph_edges()) {
        let g = Csr::from_edges(N as usize, &edges);
        let s = degree_stats(&g);
        prop_assert_eq!(s.edges, g.edge_count());
        prop_assert!((0.0..=1.0).contains(&s.top1pct_edge_share));
        prop_assert!(s.top_half_pct_edge_share <= s.top1pct_edge_share + 1e-12);
        prop_assert!((-1e-9..=1.0).contains(&s.gini));
        prop_assert!(s.max_degree <= s.edges.max(1));
    }
}

/// One possibly-hostile update. The discriminant mixes clean traffic with
/// every corruption the data plane is specified to survive: non-finite
/// addition weights, self-loops, out-of-range endpoints, conflicting
/// add+delete pairs (by collision), and deletions of absent edges.
fn arb_hostile_update() -> impl Strategy<Value = EdgeUpdate> {
    (0u32..8, 0..N + 8, 0..N + 8, 1u32..5).prop_map(|(kind, s, d, w)| match kind {
        0 => EdgeUpdate::addition(s % N, d % N, f32::NAN),
        1 => EdgeUpdate::addition(s % N, d % N, f32::INFINITY),
        2 => EdgeUpdate::addition(s % N, d % N, f32::NEG_INFINITY),
        3 => EdgeUpdate::addition(s, d, w as f32), // endpoints possibly out of range
        4 => EdgeUpdate::deletion(s, d),           // possibly out of range
        5 => EdgeUpdate::deletion(s % N, d % N),   // likely absent
        _ => EdgeUpdate::addition(s % N, d % N, w as f32),
    })
}

fn arb_hostile_stream() -> impl Strategy<Value = Vec<EdgeUpdate>> {
    proptest::collection::vec(arb_hostile_update(), 0..48)
}

// Hostile-batch properties (the robustness PR's data-plane contract). This
// block deliberately runs under the default shim configuration so the CI
// chaos job can scale coverage through `PROPTEST_CASES`.
proptest! {
    /// A batch followed by its inverse restores the CSR byte-for-byte:
    /// added pairs deleted, deleted edges re-added with their original
    /// weights, reweighted edges re-overwritten with their old weights.
    #[test]
    fn batch_then_inverse_restores_the_csr_byte_for_byte(
        initial in arb_graph_edges(),
        proposals in proptest::collection::vec((arb_edge(), any::<bool>()), 1..24),
    ) {
        let mut graph = StreamingGraph::with_capacity(N as usize);
        graph.insert_edges(initial.iter().copied()).unwrap();
        let before = graph.snapshot();

        let batch = normalize_batch(&graph, &proposals);
        let applied = graph.apply_batch(&batch).expect("normalized batch applies");

        let mut inverse = Vec::new();
        for e in applied.added_edges() {
            inverse.push(EdgeUpdate::deletion(e.src, e.dst));
        }
        for (e, old_weight) in applied.reweighted_edges() {
            inverse.push(EdgeUpdate::addition(e.src, e.dst, *old_weight));
        }
        for e in applied.deleted_edges() {
            inverse.push(EdgeUpdate::addition(e.src, e.dst, e.weight));
        }
        let inverse = UpdateBatch::from_updates(inverse)
            .expect("the categories of an applied batch are pairwise disjoint");
        graph.apply_batch(&inverse).expect("inverse of an applied batch applies");

        let after = graph.snapshot();
        prop_assert_eq!(&after, &before);
        // Byte-for-byte, not just `==`: render both and compare exactly.
        prop_assert_eq!(format!("{after:?}"), format!("{before:?}"));
    }

    /// Deleting an absent edge under strict apply is a typed
    /// [`ApplyError::MissingEdge`] naming the pair — never a silent no-op —
    /// and the failed batch leaves the graph untouched.
    #[test]
    fn absent_deletion_is_a_typed_error_never_a_silent_noop(
        initial in arb_graph_edges(),
        s in 0..N,
        d in 0..N,
    ) {
        let mut graph = StreamingGraph::with_capacity(N as usize);
        graph.insert_edges(initial.iter().copied()).unwrap();
        if graph.contains_edge(s, d) {
            let evict = UpdateBatch::from_updates(vec![EdgeUpdate::deletion(s, d)]).unwrap();
            graph.apply_batch(&evict).expect("present edge deletes");
        }
        let before = graph.snapshot();

        let batch = UpdateBatch::from_updates(vec![EdgeUpdate::deletion(s, d)])
            .expect("absent deletions are undetectable at construction");
        let err = graph.apply_batch(&batch).expect_err("absent deletion must not no-op");
        prop_assert_eq!(err, ApplyError::MissingEdge { src: s, dst: d });
        prop_assert_eq!(graph.snapshot(), before, "failed batch must not mutate");
    }

    /// Batch construction: strict errors **iff** lenient quarantines, and
    /// on clean input the two produce the identical batch.
    #[test]
    fn strict_construction_rejects_exactly_what_lenient_quarantines(
        updates in arb_hostile_stream(),
    ) {
        let strict = UpdateBatch::from_updates(updates.clone());
        let mut quarantine = QuarantineReport::new();
        let lenient = UpdateBatch::from_updates_lenient(updates, &mut quarantine);
        prop_assert_eq!(
            strict.is_err(),
            !quarantine.is_empty(),
            "strict {strict:?} vs quarantine {quarantine:?}"
        );
        if let Ok(strict) = strict {
            // Debug render: hostile streams can carry NaN weights.
            prop_assert_eq!(format!("{lenient:?}"), format!("{strict:?}"));
        }
    }

    /// Batch application: strict errors **iff** lenient quarantines, and
    /// with an empty quarantine the applied result and final graph are
    /// identical.
    #[test]
    fn strict_apply_rejects_exactly_what_lenient_quarantines(
        initial in arb_graph_edges(),
        updates in arb_hostile_stream(),
    ) {
        let mut graph = StreamingGraph::with_capacity(N as usize);
        graph.insert_edges(initial.iter().copied()).unwrap();
        // Construction-clean but possibly apply-hostile (out-of-range
        // endpoints and absent deletions survive construction).
        let batch =
            UpdateBatch::from_updates_lenient(updates, &mut QuarantineReport::new());

        let mut strict_graph = graph.clone();
        let strict = strict_graph.apply_batch(&batch);
        let mut quarantine = QuarantineReport::new();
        let lenient = graph.apply_batch_lenient(&batch, &mut quarantine);

        prop_assert_eq!(
            strict.is_err(),
            !quarantine.is_empty(),
            "strict {strict:?} vs quarantine {quarantine:?}"
        );
        if let Ok(strict_applied) = strict {
            prop_assert_eq!(format!("{lenient:?}"), format!("{strict_applied:?}"));
            prop_assert_eq!(graph.snapshot(), strict_graph.snapshot());
        }
    }

    /// Lenient ingest is deterministic: the same hostile stream yields the
    /// same batch, the same applied result, the same final graph, and the
    /// same quarantine report every time.
    #[test]
    fn lenient_ingest_is_deterministic(
        initial in arb_graph_edges(),
        updates in arb_hostile_stream(),
    ) {
        let mut base = StreamingGraph::with_capacity(N as usize);
        base.insert_edges(initial.iter().copied()).unwrap();

        let run = |updates: Vec<EdgeUpdate>| {
            let mut construction = QuarantineReport::new();
            let batch = UpdateBatch::from_updates_lenient(updates, &mut construction);
            let mut graph = base.clone();
            let mut apply = QuarantineReport::new();
            let applied = graph.apply_batch_lenient(&batch, &mut apply);
            (format!("{batch:?}"), format!("{applied:?}"), graph.snapshot(), construction, apply)
        };
        let a = run(updates.clone());
        let b = run(updates);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, b.3);
        prop_assert_eq!(a.4, b.4);
    }
}

/// Shared checker for the run-length boundary-event encoding: encode an
/// arbitrary touch stream, decode it, and verify the wire-format
/// contract. Individual word bits are not recoverable by design — every
/// member of a run carries the run's combined mask — so the round-trip
/// asserts (rel, line) sequence identity plus mask containment, and
/// independently re-derives each run's mask as the OR of its members.
fn check_touch_run_roundtrip(touches: &[(u32, u8, u64)]) {
    use tdgraph::sim::{decode_touch_runs, encode_touch_runs};

    let runs = encode_touch_runs(touches);
    assert!(runs.len() <= touches.len(), "encoding must never add entries");
    let decoded = decode_touch_runs(&runs);
    assert_eq!(decoded.len(), touches.len(), "every touch survives the round-trip");

    let mut i = 0;
    for run in &runs {
        let members = &touches[i..i + usize::from(run.len)];
        let mask = members.iter().fold(0u16, |m, &(_, word, _)| m | (1 << word));
        assert_eq!(run.mask, mask, "run mask is the OR of its members' word bits");
        for (j, &(rel, _, line)) in members.iter().enumerate() {
            assert_eq!(rel, run.rel + j as u32, "runs cover consecutive rels");
            assert_eq!(line, run.line, "runs never span cache lines");
        }
        i += usize::from(run.len);
    }
    assert_eq!(i, touches.len(), "run lengths partition the stream exactly");

    for (&(rel, word, line), &(drel, dline, dmask)) in touches.iter().zip(&decoded) {
        assert_eq!((rel, line), (drel, dline), "(rel, line) sequence is preserved in order");
        assert_ne!(dmask & (1 << word), 0, "the original word bit is in the run mask");
    }
}

// Run-length boundary-event encoding properties (the multi-lane reduce
// PR's wire-format contract). Default shim configuration, so the CI
// chaos job can scale coverage through `PROPTEST_CASES`.
proptest! {
    /// Arbitrary touch streams round-trip: small rel/line domains so
    /// adjacent touches sometimes — but not always — fuse into runs.
    #[test]
    fn touch_run_encoding_roundtrips_arbitrary_streams(
        touches in proptest::collection::vec((0u32..32, 0u8..16, 0u64..3), 0..256),
    ) {
        check_touch_run_roundtrip(&touches);
    }

    /// Adversarial domains: rels near `u32::MAX` and full 42-bit line
    /// keys must not overflow or truncate anywhere in the codec.
    #[test]
    fn touch_run_encoding_roundtrips_extreme_streams(
        touches in proptest::collection::vec(
            (u32::MAX - 64..u32::MAX, 0u8..16, (1u64 << 42) - 3..1 << 42),
            0..128,
        ),
    ) {
        check_touch_run_roundtrip(&touches);
    }

    /// Run-heavy streams (flattened consecutive segments) compress: the
    /// encoder must emit at most one run per generated segment.
    #[test]
    fn touch_run_encoding_compresses_consecutive_segments(
        segments in proptest::collection::vec((0u32..1 << 20, 0u8..16, 0u64..3, 1usize..20), 1..24),
    ) {
        let mut touches = Vec::new();
        for &(start, word, line, len) in &segments {
            for k in 0..len {
                touches.push((start + k as u32, word, line));
            }
        }
        check_touch_run_roundtrip(&touches);
        let runs = tdgraph::sim::encode_touch_runs(&touches);
        prop_assert!(
            runs.len() <= segments.len(),
            "{} runs from {} consecutive segments",
            runs.len(),
            segments.len()
        );
    }
}

/// The TDGraph engine itself under random workloads — termination (no
/// livelock on random cyclic graphs) and oracle agreement, via the full
/// harness. Kept outside `proptest!` batching with a tiny machine so the
/// whole property run stays fast.
#[test]
fn tdgraph_engine_random_workload_spotcheck() {
    for (fraction, batches) in [(1.0, 2), (0.5, 3), (0.1, 2)] {
        let res = Experiment::new(Dataset::Orkut)
            .sizing(Sizing::Tiny)
            .options(RunConfig {
                sim: SimConfig::small_test(),
                batches,
                add_fraction: fraction,
                ..RunConfig::default()
            })
            .run(EngineKind::TdGraphH);
        assert!(res.verify.is_match(), "fraction {fraction} diverged: {:?}", res.verify);
    }
}
