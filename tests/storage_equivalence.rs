//! CSR-vs-hybrid storage equivalence: the two backends of the
//! [`GraphStore`] API must agree on every observable graph surface —
//! neighbor sets, degrees, weights, snapshots, quarantine records — after
//! arbitrary seeded add/delete traffic, and every engine×algorithm run
//! must reach the same fixpoint on either backend. A final determinism
//! test pins the per-storage sweep report bytes across thread counts.

use tdgraph::prelude::*;

/// Deterministic splitmix64 stream — the tests' only randomness source.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Asserts every read surface of the two stores agrees. Neighbor *sets*
/// are compared sorted; buffer order is asserted separately through
/// `edges_vec` because the deletion-sampling pool is order-load-bearing.
fn assert_stores_agree(csr: &AnyStore, hybrid: &AnyStore, context: &str) {
    assert_eq!(csr.num_vertices(), hybrid.num_vertices(), "{context}: vertex count");
    assert_eq!(csr.num_edges(), hybrid.num_edges(), "{context}: edge count");
    for v in 0..csr.num_vertices() as u32 {
        assert_eq!(csr.degree(v), hybrid.degree(v), "{context}: degree of {v}");
        let mut a = csr.neighbors_of(v);
        let mut b = hybrid.neighbors_of(v);
        a.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.total_cmp(&y.1)));
        b.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.total_cmp(&y.1)));
        assert_eq!(a, b, "{context}: neighbor set of {v}");
        for &(n, w) in &a {
            assert!(hybrid.contains_edge(v, n), "{context}: contains ({v},{n})");
            assert_eq!(hybrid.edge_weight(v, n), Some(w), "{context}: weight ({v},{n})");
        }
    }
    assert_eq!(csr.edges_vec(), hybrid.edges_vec(), "{context}: buffer order");
    assert_eq!(csr.snapshot(), hybrid.snapshot(), "{context}: snapshot");
}

/// One seeded batch of mixed adds/deletes. With `faulty`, a slice of the
/// updates is made invalid (out-of-bounds endpoints, absent deletions) to
/// drive the quarantine path.
fn compose_batch(rng: &mut Rng, n: u32, present: &[Edge], faulty: bool) -> Vec<EdgeUpdate> {
    let mut updates = Vec::new();
    for _ in 0..(8 + rng.below(24)) {
        let roll = rng.below(10);
        if roll < 5 || present.is_empty() {
            let src = rng.below(u64::from(n)) as u32;
            let dst = rng.below(u64::from(n)) as u32;
            updates.push(EdgeUpdate::addition(src, dst, 1.0 + rng.below(7) as f32));
        } else if roll < 8 {
            let e = present[rng.below(present.len() as u64) as usize];
            updates.push(EdgeUpdate::deletion(e.src, e.dst));
        } else if faulty && roll == 8 {
            // Out-of-bounds endpoint: quarantined by lenient apply.
            updates.push(EdgeUpdate::addition(n + rng.below(5) as u32, 0, 1.0));
        } else if faulty {
            // Deleting an edge that (almost surely) is absent.
            updates.push(EdgeUpdate::deletion(rng.below(u64::from(n)) as u32, n - 1));
        }
    }
    updates
}

#[test]
fn stores_agree_after_seeded_add_delete_batches() {
    const N: u32 = 64;
    for seed in 0..6u64 {
        let mut csr = AnyStore::with_capacity(StorageKind::Csr, N as usize);
        let mut hybrid = AnyStore::with_capacity(StorageKind::Hybrid, N as usize);
        let mut rng = Rng(seed);
        for step in 0..40 {
            let updates = compose_batch(&mut rng, N, &csr.edges_vec(), false);
            let batch = match UpdateBatch::from_updates(updates) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let a = csr.apply_batch(&batch);
            let b = hybrid.apply_batch(&batch);
            match (a, b) {
                (Ok(ra), Ok(rb)) => {
                    assert_eq!(ra.affected_vertices(), rb.affected_vertices(), "affected sets");
                }
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
                (a, b) => panic!("seed {seed} step {step}: outcomes diverge: {a:?} vs {b:?}"),
            }
            assert_stores_agree(&csr, &hybrid, &format!("seed {seed} step {step}"));
        }
    }
}

#[test]
fn stores_quarantine_identically_under_lenient_batches() {
    const N: u32 = 48;
    for seed in 100..104u64 {
        let mut csr = AnyStore::with_capacity(StorageKind::Csr, N as usize);
        let mut hybrid = AnyStore::with_capacity(StorageKind::Hybrid, N as usize);
        let mut q_csr = QuarantineReport::default();
        let mut q_hybrid = QuarantineReport::default();
        let mut rng = Rng(seed);
        for step in 0..30 {
            let updates = compose_batch(&mut rng, N, &csr.edges_vec(), true);
            let mut scratch = QuarantineReport::default();
            let batch = UpdateBatch::from_updates_lenient(updates, &mut scratch);
            let ra = csr.apply_batch_lenient(&batch, &mut q_csr);
            let rb = hybrid.apply_batch_lenient(&batch, &mut q_hybrid);
            assert_eq!(
                ra.affected_vertices(),
                rb.affected_vertices(),
                "seed {seed} step {step}: affected sets"
            );
            assert_stores_agree(&csr, &hybrid, &format!("seed {seed} step {step}"));
        }
        assert_eq!(q_csr, q_hybrid, "seed {seed}: quarantine records");
        assert!(!q_csr.is_empty(), "seed {seed}: the faulty stream must exercise quarantine");
    }
}

/// Walks one vertex's degree up through every tier boundary (inline cap 4,
/// hash promotion >16) and back down through the demotion thresholds
/// (<8, ≤2), checking full equivalence at every degree on the way.
#[test]
fn tier_boundary_degrees_stay_equivalent() {
    const N: u32 = 40;
    let hub = 0u32;
    let mut csr = AnyStore::with_capacity(StorageKind::Csr, N as usize);
    let mut hybrid = AnyStore::with_capacity(StorageKind::Hybrid, N as usize);
    for d in 1..N {
        let batch = UpdateBatch::from_updates(vec![EdgeUpdate::addition(hub, d, d as f32)])
            .expect("valid add");
        csr.apply_batch(&batch).expect("csr add");
        hybrid.apply_batch(&batch).expect("hybrid add");
        assert_stores_agree(&csr, &hybrid, &format!("growing, degree {d}"));
    }
    // Delete interior neighbors first so swap_remove churns positions.
    let mut order: Vec<u32> = (1..N).collect();
    order.reverse();
    let mid = order.len() / 2;
    order.swap(0, mid);
    for (i, d) in order.into_iter().enumerate() {
        let batch =
            UpdateBatch::from_updates(vec![EdgeUpdate::deletion(hub, d)]).expect("valid delete");
        csr.apply_batch(&batch).expect("csr delete");
        hybrid.apply_batch(&batch).expect("hybrid delete");
        assert_stores_agree(&csr, &hybrid, &format!("shrinking, step {i}"));
    }
    assert_eq!(hybrid.degree(hub), 0);
}

/// The acceptance gate: every engine×algorithm reference cell reaches the
/// same verified fixpoint under both storage backends, with identical
/// algorithmic work (states, useful updates, edges, batches). Cycles and
/// DRAM traffic may differ — the hybrid store charges its layout traffic
/// to the memory system — so they are deliberately not compared.
#[test]
fn engine_fixpoints_agree_across_storages() {
    let spec = SweepSpec::new()
        .dataset(Dataset::Amazon)
        .sizing(Sizing::Tiny)
        .engines([EngineKind::LigraO, EngineKind::TdGraphH])
        .algos([AlgoSel::HubSssp, AlgoSel::Fixed(Algo::pagerank())])
        .storages([StorageKind::Csr, StorageKind::Hybrid])
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        });
    let report = SweepRunner::new().threads(2).run(&spec);
    report.assert_all_ok();
    report.assert_all_verified();
    // Storage is the innermost axis: cells pair up as (csr, hybrid).
    for pair in report.cells.chunks(2) {
        let (csr, hybrid) = (&pair[0], &pair[1]);
        let a = csr.metrics().expect("csr metrics");
        let b = hybrid.metrics().expect("hybrid metrics");
        let label = format!("{} {} {}", a.engine, a.algo, csr.cell.dataset.abbrev());
        assert_eq!(a.state_updates, b.state_updates, "{label}: state updates");
        assert_eq!(a.useful_updates, b.useful_updates, "{label}: useful updates");
        assert_eq!(a.edges_processed, b.edges_processed, "{label}: edges processed");
        assert_eq!(a.batches, b.batches, "{label}: batches");
        let sb = hybrid.run_result().expect("hybrid result").storage;
        assert!(!sb.is_empty(), "{label}: hybrid cells must report tier stats");
        let sa = csr.run_result().expect("csr result").storage;
        assert!(sa.is_empty(), "{label}: csr cells must stay statless");
    }
}

/// Per-storage sweep reports are byte-stable across worker thread counts:
/// the canonical serialization depends only on the spec, never on the
/// schedule.
#[test]
fn per_storage_sweep_reports_are_byte_stable_across_thread_counts() {
    let spec = SweepSpec::new()
        .dataset(Dataset::Dblp)
        .sizing(Sizing::Tiny)
        .engines([EngineKind::LigraO, EngineKind::TdGraphH])
        .storages([StorageKind::Csr, StorageKind::Hybrid])
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        });
    let serial = SweepRunner::new().threads(1).run(&spec);
    let parallel = SweepRunner::new().threads(4).run(&spec);
    serial.assert_all_ok();
    parallel.assert_all_ok();
    assert_eq!(serial.canonical_lines(), parallel.canonical_lines());
}
