//! Determinism acceptance suite for host-parallel sharded execution.
//!
//! The sharded execution core records boundary events on the driving
//! thread and replays/merges them in a sequential reduction, so every
//! observable surface must be byte-identical to the serial walk:
//!
//! * `SweepReport::canonical_lines` across `ExecConfig::serial()`,
//!   `.shards(2)`, and `.shards(4)`,
//! * the merged observability snapshot's canonical rendering,
//! * the verified fixpoints (oracle verdicts over final vertex states),
//! * all of the above across `SweepRunner` host thread counts, and
//! * all of the above under a hostile data-plane `FaultPlan`.
//!
//! The engine set deliberately spans the TDGraph accelerator and two
//! software baselines so both the accelerator timeline (MLP-coalesced
//! boundary charges) and the core timeline are exercised.

use tdgraph::prelude::*;

const EXEC_CONFIGS: [ExecConfig; 3] =
    [ExecConfig::serial(), ExecConfig::serial().shards(2), ExecConfig::serial().shards(4)];

fn base_spec() -> SweepSpec {
    SweepSpec::new()
        .datasets([Dataset::Amazon, Dataset::Dblp])
        .sizing(Sizing::Tiny)
        .engines([EngineKind::TdGraphH, EngineKind::LigraO, EngineKind::GraphBolt])
        .oracle_modes([OracleMode::Final])
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        })
}

fn hostile_plan() -> FaultPlan {
    FaultPlan::seeded(0x5AAD)
        .with_absent_deletions(1.0)
        .with_nan_weights(0.3)
        .with_out_of_range_ids(0.2)
        .with_duplicate_edges(0.2)
}

/// One observed sweep of `spec` pinned to `exec`, at `threads` host
/// threads. Returns the three determinism surfaces: canonical report
/// lines, the merged snapshot's canonical rendering, and the per-cell
/// verified fixpoints (oracle verdict + full metrics).
fn run_pinned(spec: &SweepSpec, exec: ExecConfig, threads: usize) -> (String, String, Vec<String>) {
    let spec = spec.clone().tune(move |o| o.exec = exec);
    let report = SweepRunner::new().threads(threads).observe(true).run(&spec);
    report.assert_all_ok();
    let snapshot = report.obs.as_ref().expect("observe(true) fills the snapshot");
    let fixpoints = report
        .cells
        .iter()
        .map(|c| {
            let r = c.run_result().expect("ok cells carry their result");
            format!("{:?} {:?}", r.verify, r.metrics)
        })
        .collect();
    (report.canonical_lines(), snapshot.canonical_json_line(), fixpoints)
}

/// The headline acceptance criterion: `Sharded(2)` and `Sharded(4)`
/// produce byte-identical canonical lines, merged snapshots, and
/// verified fixpoints to `Serial` — for the TDGraph accelerator and the
/// software baselines alike.
#[test]
fn sharded_sweep_is_byte_identical_to_serial() {
    let spec = base_spec();
    let (lines, snapshot, fixpoints) = run_pinned(&spec, ExecConfig::serial(), 2);
    assert!(!lines.is_empty());
    for exec in [ExecConfig::serial().shards(2), ExecConfig::serial().shards(4)] {
        let (l, s, f) = run_pinned(&spec, exec, 2);
        assert_eq!(lines, l, "{} canonical lines diverged from serial", exec.label());
        assert_eq!(snapshot, s, "{} merged snapshot diverged from serial", exec.label());
        assert_eq!(fixpoints, f, "{} fixpoints diverged from serial", exec.label());
    }
}

/// Host thread count — of the sweep runner *and* of the replay shards —
/// must not leak into any observable surface.
#[test]
fn sharded_sweep_is_deterministic_across_host_thread_counts() {
    let spec = base_spec();
    let baseline = run_pinned(&spec, ExecConfig::serial().shards(4), 1);
    for threads in [2, 4] {
        let run = run_pinned(&spec, ExecConfig::serial().shards(4), threads);
        assert_eq!(baseline, run, "sweep diverged at {threads} host threads");
    }
}

/// The determinism contract holds under data-plane chaos: a hostile
/// `FaultPlan` with lenient ingest degrades cells identically — same
/// canonical lines, same quarantine evidence — under every exec config.
#[test]
fn chaos_fault_plan_cells_are_deterministic_under_sharding() {
    let spec = base_spec().ingest(IngestMode::Lenient).fault_plans([hostile_plan()]);
    let mut reports = EXEC_CONFIGS.iter().map(|&exec| {
        let spec = spec.clone().tune(move |o| o.exec = exec);
        let report = SweepRunner::new().threads(2).run(&spec);
        report.assert_all_ok();
        assert!(report.outcome_counts().degraded > 0, "the hostile plan must bite");
        report
    });
    let serial = reports.next().expect("serial report");
    for sharded in reports {
        assert_eq!(serial.canonical_lines(), sharded.canonical_lines());
        assert_eq!(serial.degradation_digest(), sharded.degradation_digest());
        for (a, b) in serial.cells.iter().zip(&sharded.cells) {
            let (ra, rb) = (a.run_result().unwrap(), b.run_result().unwrap());
            assert_eq!(ra.quarantine, rb.quarantine, "cell {}", a.cell.index);
        }
    }
}

/// `exec_configs` as a sweep axis: one sweep holds serial and sharded
/// cells side by side, and paired cells (same coordinates, different
/// exec config) carry identical canonical records modulo the cell index.
#[test]
fn exec_config_axis_pairs_cells_with_identical_canonical_records() {
    let spec = SweepSpec::new()
        .dataset(Dataset::Amazon)
        .sizing(Sizing::Tiny)
        .engines([EngineKind::TdGraphH, EngineKind::LigraO])
        .oracle_modes([OracleMode::Final])
        .exec_configs(EXEC_CONFIGS)
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        });
    assert_eq!(spec.cell_count(), 2 * EXEC_CONFIGS.len(), "exec axis multiplies the grid");
    let report = SweepRunner::new().threads(2).run(&spec);
    report.assert_all_verified();

    // The exec axis is innermost: consecutive cells differ only in mode.
    let records: Vec<CanonicalCell> = report
        .cells
        .iter()
        .map(|c| {
            let mut record = c.canonical().expect("verified cells have canonical records");
            record.cell = 0;
            record
        })
        .collect();
    for pair in records.chunks(EXEC_CONFIGS.len()) {
        for other in &pair[1..] {
            assert_eq!(
                pair[0].to_json_line(),
                other.to_json_line(),
                "sharded cell diverged from its serial twin"
            );
        }
    }
}

/// A direct harness-level check that final vertex states reach the same
/// verified fixpoint: the oracle verdict and every metric of a single
/// experiment agree across exec modes.
#[test]
fn experiment_fixpoints_agree_across_exec_configs() {
    let run = |exec: ExecConfig| {
        Experiment::new(Dataset::Orkut)
            .sizing(Sizing::Tiny)
            .tune(move |o| {
                o.sim = SimConfig::small_test();
                o.batches = 2;
                o.exec = exec;
            })
            .run(EngineKind::TdGraphH)
    };
    let serial = run(ExecConfig::serial());
    assert!(serial.verify.is_match());
    for exec in [ExecConfig::serial().shards(2), ExecConfig::serial().shards(4)] {
        let sharded = run(exec);
        assert_eq!(format!("{:?}", serial.verify), format!("{:?}", sharded.verify));
        assert_eq!(format!("{:?}", serial.metrics), format!("{:?}", sharded.metrics));
    }
}
