//! Chaos acceptance suite for the data-plane fault-injection layer.
//!
//! Where `fault_isolation.rs` injects faults into the *runner* (engine
//! panics, watchdog timeouts), this suite injects them into the *data
//! plane* below it — corrupted edge lists and hostile update batches —
//! and proves the degradation contract of the robustness PR:
//!
//! * a corrupted sweep under lenient ingest completes every cell as
//!   `Degraded` (never `Failed`) with non-empty quarantine evidence,
//! * the same corrupted sweep is byte-identical at 1 vs 2 threads,
//! * a no-op `FaultPlan` is byte-identical to no plan at all,
//! * strict ingest rejects exactly the streams lenient ingest repairs,
//! * a state-corrupting engine is caught mid-run by the differential
//!   oracle and reported as structured evidence, not a panic.

use std::sync::Arc;

use tdgraph::prelude::*;

fn chaos_spec() -> SweepSpec {
    SweepSpec::new()
        .datasets([Dataset::Amazon, Dataset::Dblp])
        .sizing(Sizing::Tiny)
        .engines([EngineKind::LigraO, EngineKind::TdGraphH])
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        })
}

fn hostile_plan() -> FaultPlan {
    FaultPlan::seeded(0xC4A05)
        .with_absent_deletions(1.0)
        .with_nan_weights(0.3)
        .with_out_of_range_ids(0.2)
        .with_duplicate_edges(0.2)
}

/// The headline acceptance criterion: a corrupted sweep under lenient
/// ingest + `OracleMode::Final` completes every cell as `Degraded` with
/// non-empty quarantine reports.
#[test]
fn corrupted_lenient_sweep_degrades_every_cell_with_evidence() {
    let sink = Arc::new(VecSink::new());
    let spec = chaos_spec()
        .ingest(IngestMode::Lenient)
        .oracle_modes([OracleMode::Final])
        .fault_plans([hostile_plan()]);
    let report = SweepRunner::new().threads(2).trace_sink(Arc::clone(&sink)).run(&spec);

    report.assert_all_ok();
    let counts = report.outcome_counts();
    assert_eq!(counts.degraded, 4, "every cell degrades, none fail: {counts:?}");
    assert_eq!(counts.failed + counts.panicked + counts.timed_out, 0);
    for c in &report.cells {
        assert_eq!(c.outcome.kind(), OutcomeKind::Degraded);
        let r = c.run_result().expect("degraded cells carry their full result");
        assert!(!r.quarantine.is_empty(), "cell {} has an empty quarantine", c.cell.index);
        assert!(r.quarantine.total() > 0);
        assert!(!r.quarantine.exemplars().is_empty(), "exemplars retained");
        assert!(c.is_verified(), "the surviving stream still verifies");
    }
    let digest = report.degradation_digest();
    assert!(digest.contains("4 of 4 cells degraded"), "{digest}");
    assert_eq!(sink.events().iter().filter(|e| e.name() == "cell_degraded").count(), 4);
}

/// The same corrupted sweep must be byte-identical at 1 vs 2 threads:
/// fault injection is seeded per cell, so the schedule cannot leak in.
#[test]
fn corrupted_sweep_is_deterministic_across_thread_counts() {
    let spec = chaos_spec()
        .ingest(IngestMode::Lenient)
        .oracle_modes([OracleMode::Final])
        .fault_plans([hostile_plan()]);
    let one = SweepRunner::new().threads(1).run(&spec);
    let two = SweepRunner::new().threads(2).run(&spec);
    assert_eq!(one.canonical_lines(), two.canonical_lines());
    assert_eq!(one.degradation_digest(), two.degradation_digest());
    // Per-cell quarantine contents (not just totals) are identical.
    for (a, b) in one.cells.iter().zip(&two.cells) {
        let (ra, rb) = (a.run_result().unwrap(), b.run_result().unwrap());
        assert_eq!(ra.quarantine, rb.quarantine);
    }
}

/// A fault-free plan must be indistinguishable from no plan at all — the
/// chaos machinery is pay-for-what-you-inject.
#[test]
fn noop_fault_plan_is_byte_identical_to_no_plan() {
    let plain = SweepRunner::new().threads(2).run(&chaos_spec());
    let noop = SweepRunner::new()
        .threads(2)
        .run(&chaos_spec().ingest(IngestMode::Lenient).fault_plans([FaultPlan::none()]));
    assert_eq!(plain.canonical_lines(), noop.canonical_lines());
    assert_eq!(noop.outcome_counts().degraded, 0);
    assert_eq!(noop.outcome_counts().completed, 4);
}

/// Strict ingest turns the exact same corrupted cells into typed
/// failures: strict rejects what lenient quarantines.
#[test]
fn strict_ingest_fails_the_cells_lenient_degrades() {
    let lenient = SweepRunner::new()
        .threads(1)
        .run(&chaos_spec().ingest(IngestMode::Lenient).fault_plans([hostile_plan()]));
    let strict = SweepRunner::new().threads(1).run(&chaos_spec().fault_plans([hostile_plan()]));
    assert_eq!(lenient.outcome_counts().degraded, 4);
    assert_eq!(strict.outcome_counts().failed, 4);
    for c in &strict.cells {
        assert_eq!(c.outcome.kind(), OutcomeKind::Failed);
        assert!(!c.outcome.detail().is_empty());
    }
}

/// Corrupted *text* ingest: strict parsing errors iff lenient parsing
/// quarantines, on the same corrupted edge list.
#[test]
fn corrupted_edge_list_text_honors_the_strict_lenient_complement() {
    let clean: String = (0..200).map(|i| format!("{i} {} 1.0\n", i + 1)).collect();
    for seed in 0..8u64 {
        let plan = FaultPlan::seeded(seed)
            .with_malformed_lines(0.1)
            .with_truncated_lines(0.1)
            .with_out_of_range_ids(0.05)
            .with_nan_weights(0.1);
        let corrupted = plan.corrupt_text(&clean);
        let strict = parse_edge_list(std::io::Cursor::new(corrupted.as_str()));
        let quarantine = LoadConfig::new()
            .ingest(IngestMode::Lenient)
            .parse(std::io::Cursor::new(corrupted.as_str()))
            .expect("lenient parsing never errors on data faults")
            .quarantine;
        assert_eq!(
            strict.is_err(),
            !quarantine.is_empty(),
            "seed {seed}: strict errors iff lenient quarantines\n{corrupted}"
        );
    }
}

/// A state-corrupting engine survives the sweep but is caught by the
/// mid-run oracle: the cell degrades with oracle evidence instead of
/// lying about success.
#[test]
fn wrong_states_engine_degrades_under_the_mid_run_oracle() {
    let mut registry = EngineRegistry::with_software();
    registry.register("liar", || Box::new(FaultyEngine::new(FaultMode::WrongStatesOnBatch(0))));
    let sink = Arc::new(VecSink::new());
    let spec = SweepSpec::new()
        .dataset(Dataset::Amazon)
        .sizing(Sizing::Tiny)
        .engine_named("liar")
        .engine_named("ligra-o")
        .oracle_modes([OracleMode::EveryNBatches(1)])
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        });
    let report =
        SweepRunner::new().threads(1).registry(registry).trace_sink(Arc::clone(&sink)).run(&spec);

    report.assert_all_ok();
    assert_eq!(report.outcome_counts().degraded, 1, "only the liar degrades");
    assert_eq!(report.outcome_counts().completed, 1);
    let liar = &report.cells[0];
    assert_eq!(liar.outcome.kind(), OutcomeKind::Degraded);
    let r = liar.run_result().unwrap();
    assert!(r.oracle.mismatches > 0, "the oracle must catch corrupted states mid-run");
    assert!(!r.oracle.records.is_empty());
    assert!(!liar.is_verified());
    let honest = &report.cells[1];
    assert!(honest.is_verified());
    assert_eq!(honest.run_result().unwrap().oracle.mismatches, 0);
    let digest = report.degradation_digest();
    assert!(digest.contains("oracle"), "{digest}");
}
