//! End-to-end pipeline test spanning every crate: dataset generation →
//! streaming updates → incremental seeding → engine execution on the
//! simulated machine → metrics → oracle verification.

use tdgraph::prelude::*;

fn tiny_options() -> RunConfig {
    RunConfig { sim: SimConfig::small_test(), batches: 2, ..RunConfig::default() }
}

#[test]
fn full_pipeline_baseline_vs_accelerator() {
    let experiment = Experiment::new(Dataset::Amazon).sizing(Sizing::Tiny).options(tiny_options());
    let baseline = experiment.run(EngineKind::LigraO);
    let tdgraph = experiment.run(EngineKind::TdGraphH);

    assert!(baseline.verify.is_match(), "baseline diverged: {:?}", baseline.verify);
    assert!(tdgraph.verify.is_match(), "TDGraph diverged: {:?}", tdgraph.verify);
    assert_eq!(baseline.metrics.batches, 2);
    assert_eq!(tdgraph.metrics.batches, 2);
    assert!(baseline.metrics.cycles > 0);
    assert!(tdgraph.metrics.cycles > 0);
}

#[test]
fn pipeline_works_for_every_algorithm_category() {
    for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
        let res = Experiment::new(Dataset::Dblp)
            .sizing(Sizing::Tiny)
            .algorithm(algo)
            .options(tiny_options())
            .run(EngineKind::TdGraphH);
        assert!(res.verify.is_match(), "{} diverged end-to-end: {:?}", algo.name(), res.verify);
        assert_eq!(res.metrics.algo, algo.name());
    }
}

#[test]
fn deterministic_across_repeated_runs() {
    let experiment = Experiment::new(Dataset::Gplus).sizing(Sizing::Tiny).options(tiny_options());
    let a = experiment.run(EngineKind::TdGraphH);
    let b = experiment.run(EngineKind::TdGraphH);
    assert_eq!(a.metrics.cycles, b.metrics.cycles, "simulation must be deterministic");
    assert_eq!(a.metrics.state_updates, b.metrics.state_updates);
    assert_eq!(a.metrics.dram_bytes, b.metrics.dram_bytes);
}

#[test]
fn every_dataset_profile_runs_end_to_end() {
    for ds in Dataset::ALL {
        let res = Experiment::new(ds)
            .sizing(Sizing::Tiny)
            .options(RunConfig { sim: SimConfig::small_test(), batches: 1, ..RunConfig::default() })
            .run(EngineKind::LigraO);
        assert!(res.verify.is_match(), "{ds:?} diverged: {:?}", res.verify);
    }
}

#[test]
fn table1_machine_configuration_also_runs() {
    // The full Table 1 machine (64 cores, 64 MB LLC) must work, not just
    // the scaled configs.
    let res = Experiment::new(Dataset::Amazon)
        .sizing(Sizing::Tiny)
        .options(RunConfig { sim: SimConfig::table1(), batches: 1, ..RunConfig::default() })
        .run(EngineKind::TdGraphH);
    assert!(res.verify.is_match());
}
