//! Determinism acceptance matrix for multi-lane parallel reduce and
//! boundary-event encoding.
//!
//! The reducer lanes partition the LLC and touch-index state by
//! cache-line key range and the run-length encoding reshapes the
//! replay → reduce wire format, so every observable surface must stay
//! byte-identical to the serial walk across the whole matrix:
//!
//! * `SweepReport::canonical_lines`, the merged observability snapshot,
//!   and the verified fixpoints across {1, 2, 4} reducer lanes ×
//!   {packed, run-length} encodings × {1, 2} sweep host threads,
//! * the same surfaces for every registered engine (software baselines
//!   and every accelerator model) under the laned run-length config,
//! * the wall-clock pipeline report, which must stay consistent with the
//!   configuration it describes without ever entering those surfaces.

use tdgraph::prelude::*;

const LANES: [usize; 3] = [1, 2, 4];
const ENCODINGS: [EventEncoding; 2] = [EventEncoding::Packed, EventEncoding::RunLength];
const HOST_THREADS: [usize; 2] = [1, 2];

fn base_spec() -> SweepSpec {
    SweepSpec::new()
        .dataset(Dataset::Amazon)
        .sizing(Sizing::Tiny)
        .engines([EngineKind::TdGraphH, EngineKind::LigraO, EngineKind::GraphBolt])
        .oracle_modes([OracleMode::Final])
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        })
}

/// One observed sweep of `spec` pinned to `exec`, at `threads` host
/// threads. Returns the three determinism surfaces: canonical report
/// lines, the merged snapshot's canonical rendering, and the per-cell
/// verified fixpoints (oracle verdict + full metrics).
fn run_pinned(spec: &SweepSpec, exec: ExecConfig, threads: usize) -> (String, String, Vec<String>) {
    let spec = spec.clone().tune(move |o| o.exec = exec);
    let report = SweepRunner::new().threads(threads).observe(true).run(&spec);
    report.assert_all_ok();
    let snapshot = report.obs.as_ref().expect("observe(true) fills the snapshot");
    let fixpoints = report
        .cells
        .iter()
        .map(|c| {
            let r = c.run_result().expect("ok cells carry their result");
            format!("{:?} {:?}", r.verify, r.metrics)
        })
        .collect();
    (report.canonical_lines(), snapshot.canonical_json_line(), fixpoints)
}

/// The headline acceptance criterion of the lane/encoding work: the full
/// {lanes} × {encodings} × {host threads} matrix is byte-identical to the
/// serial walk on every determinism surface.
#[test]
fn lane_encoding_matrix_is_byte_identical_to_serial() {
    let spec = base_spec();
    let serial = run_pinned(&spec, ExecConfig::serial(), 2);
    assert!(!serial.0.is_empty());
    for lanes in LANES {
        for encoding in ENCODINGS {
            for threads in HOST_THREADS {
                let exec =
                    ExecConfig::serial().shards(2).reduce_lanes(lanes).event_encoding(encoding);
                let run = run_pinned(&spec, exec, threads);
                assert_eq!(
                    serial,
                    run,
                    "{} at {threads} sweep host threads diverged from serial",
                    exec.label()
                );
            }
        }
    }
}

/// Every registered engine — the software baselines and every
/// accelerator model — reaches the serial fixpoint and metrics under the
/// most aggressive configuration (laned reduce + run-length encoding).
#[test]
fn every_engine_matches_serial_under_laned_rle_execution() {
    let laned =
        ExecConfig::serial().shards(2).reduce_lanes(4).event_encoding(EventEncoding::RunLength);
    for kind in EngineKind::ALL {
        let run = |exec: ExecConfig| {
            Experiment::new(Dataset::Amazon)
                .sizing(Sizing::Tiny)
                .tune(move |o| {
                    o.sim = SimConfig::small_test();
                    o.batches = 2;
                    o.exec = exec;
                })
                .run(kind)
        };
        let serial = run(ExecConfig::serial());
        let sharded = run(laned);
        assert!(serial.verify.is_match() || matches!(serial.verify, VerifyOutcome::Skipped));
        assert_eq!(
            format!("{:?}", serial.metrics),
            format!("{:?}", sharded.metrics),
            "{} metrics diverged under {}",
            kind.key(),
            laned.label()
        );
        assert_eq!(
            format!("{:?}", serial.verify),
            format!("{:?}", sharded.verify),
            "{} verdict diverged under {}",
            kind.key(),
            laned.label()
        );
    }
}

/// The wall-clock pipeline report rides next to the deterministic
/// surfaces and must describe the configuration that ran: lane count,
/// encoding, one reduce wall per lane, and byte totals consistent with
/// the event counts.
#[test]
fn pipeline_report_is_consistent_with_its_configuration() {
    for (exec, max_encoded) in [
        (ExecConfig::serial().shards(2).reduce_lanes(2), 1u64),
        // A 16 B run can cover as few as one 8 B packed touch, so RLE is
        // bounded by 2x raw; it must never exceed that.
        (
            ExecConfig::serial().shards(2).reduce_lanes(2).event_encoding(EventEncoding::RunLength),
            2u64,
        ),
    ] {
        let res = Experiment::new(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .tune(move |o| {
                o.sim = SimConfig::small_test();
                o.batches = 2;
                o.exec = exec;
            })
            .run(EngineKind::TdGraphH);
        let report = res.exec.expect("sharded runs carry a pipeline report");
        assert_eq!(report.reduce_lanes, exec.lanes());
        assert_eq!(report.encoding, exec.encoding());
        assert_eq!(report.reduce_wall.len(), exec.lanes());
        assert_eq!(report.touch_bytes_raw, 8 * report.touch_events);
        assert_eq!(report.fill_bytes, 24 * report.fill_events);
        assert!(report.touch_events > 0, "the reference cell crosses the boundary");
        assert!(
            report.touch_bytes_encoded <= max_encoded * report.touch_bytes_raw,
            "{}: encoded {} vs raw {}",
            exec.label(),
            report.touch_bytes_encoded,
            report.touch_bytes_raw
        );
    }
}
