//! Failure injection: malformed inputs must error (or be normalized per the
//! documented policy) without corrupting state — never silently succeed.

use tdgraph::prelude::*;

fn base_graph() -> StreamingGraph {
    let mut g = StreamingGraph::with_capacity(8);
    g.insert_edges([Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(2, 3, 1.0)]).unwrap();
    g
}

#[test]
fn self_loop_addition_is_rejected_at_batch_construction() {
    let err = UpdateBatch::from_updates(vec![EdgeUpdate::addition(5, 5, 1.0)]).unwrap_err();
    assert_eq!(err, BatchError::SelfLoop { vertex: 5 });
}

#[test]
fn conflicting_add_and_delete_is_rejected() {
    let err = UpdateBatch::from_updates(vec![
        EdgeUpdate::addition(1, 2, 1.0),
        EdgeUpdate::deletion(1, 2),
    ])
    .unwrap_err();
    assert_eq!(err, BatchError::ConflictingUpdates { src: 1, dst: 2 });
}

#[test]
fn duplicate_updates_are_normalized_not_errored() {
    let b = UpdateBatch::from_updates(vec![
        EdgeUpdate::deletion(0, 1),
        EdgeUpdate::deletion(0, 1),
        EdgeUpdate::addition(3, 4, 2.0),
        EdgeUpdate::addition(3, 4, 2.0),
    ])
    .unwrap();
    assert_eq!(b.len(), 2, "duplicates collapse per documented policy");
}

#[test]
fn deleting_an_absent_edge_fails_atomically() {
    let mut g = base_graph();
    let edges_before = g.edges_vec();
    let batch = UpdateBatch::from_updates(vec![
        EdgeUpdate::addition(4, 5, 1.0),
        EdgeUpdate::deletion(6, 7), // not present
    ])
    .unwrap();
    let err = g.apply_batch(&batch).unwrap_err();
    assert_eq!(err, ApplyError::MissingEdge { src: 6, dst: 7 });
    assert_eq!(g.edges_vec(), edges_before, "failed batch must leave the graph intact");
    assert!(!g.contains_edge(4, 5), "the valid half must not have been applied");
}

#[test]
fn out_of_range_vertices_fail_atomically() {
    let mut g = base_graph();
    let count_before = g.edge_count();
    let batch = UpdateBatch::from_updates(vec![EdgeUpdate::addition(0, 100, 1.0)]).unwrap();
    assert!(matches!(
        g.apply_batch(&batch),
        Err(ApplyError::VertexOutOfBounds { vertex: 100, .. })
    ));
    assert_eq!(g.edge_count(), count_before);
}

#[test]
fn empty_batch_is_a_no_op() {
    let mut g = base_graph();
    let before = g.edges_vec();
    let applied = g.apply_batch(&UpdateBatch::default()).unwrap();
    assert!(applied.affected_vertices().is_empty());
    assert_eq!(g.edges_vec(), before);
}

#[test]
fn bad_batch_composer_fraction_panics() {
    assert!(std::panic::catch_unwind(|| BatchComposer::new(vec![], 1.5, 1)).is_err());
}
