//! The strongest correctness property: every engine — four software
//! systems, the TDGraph variants, and all comparator accelerators — must
//! drive every algorithm to the same fixpoint the from-scratch oracle
//! computes, on the same streaming workload.

use tdgraph::prelude::*;

const ALL_ENGINES: [EngineKind; 16] = [
    EngineKind::LigraO,
    EngineKind::LigraDO,
    EngineKind::GraphBolt,
    EngineKind::KickStarter,
    EngineKind::Dzig,
    EngineKind::TdGraphH,
    EngineKind::TdGraphHWithout,
    EngineKind::TdGraphS,
    EngineKind::TdGraphSWithout,
    EngineKind::Hats,
    EngineKind::Minnow,
    EngineKind::Phi,
    EngineKind::DepGraph,
    EngineKind::JetStream,
    EngineKind::JetStreamWith,
    EngineKind::GraphPulse,
];

fn experiment(algo: Option<Algo>) -> Experiment {
    let mut e = Experiment::new(Dataset::Amazon).sizing(Sizing::Tiny).options(RunConfig {
        sim: SimConfig::small_test(),
        batches: 2,
        ..RunConfig::default()
    });
    if let Some(a) = algo {
        e = e.algorithm(a);
    }
    e
}

#[test]
fn all_engines_agree_on_sssp() {
    let e = experiment(None);
    for kind in ALL_ENGINES {
        let res = e.run(kind);
        assert!(res.verify.is_match(), "{kind:?} diverged on SSSP: {:?}", res.verify);
    }
}

#[test]
fn all_engines_agree_on_cc() {
    let e = experiment(Some(Algo::cc()));
    for kind in ALL_ENGINES {
        let res = e.run(kind);
        assert!(res.verify.is_match(), "{kind:?} diverged on CC: {:?}", res.verify);
    }
}

#[test]
fn all_engines_agree_on_pagerank() {
    let e = experiment(Some(Algo::pagerank()));
    for kind in ALL_ENGINES {
        let res = e.run(kind);
        assert!(res.verify.is_match(), "{kind:?} diverged on PageRank: {:?}", res.verify);
    }
}

#[test]
fn all_engines_agree_on_adsorption() {
    let e = experiment(Some(Algo::adsorption()));
    for kind in ALL_ENGINES {
        let res = e.run(kind);
        assert!(res.verify.is_match(), "{kind:?} diverged on Adsorption: {:?}", res.verify);
    }
}

#[test]
fn all_engines_agree_under_deletion_heavy_stream() {
    let e = experiment(None).tune(|o| o.add_fraction = 0.2);
    for kind in ALL_ENGINES {
        let res = e.run(kind);
        assert!(res.verify.is_match(), "{kind:?} diverged under deletions: {:?}", res.verify);
    }
}

#[test]
fn all_engines_agree_under_addition_only_stream() {
    let e = experiment(Some(Algo::cc())).tune(|o| o.add_fraction = 1.0);
    for kind in ALL_ENGINES {
        let res = e.run(kind);
        assert!(res.verify.is_match(), "{kind:?} diverged (adds only): {:?}", res.verify);
    }
}
