//! Property-based storage equivalence: for *arbitrary* update streams —
//! valid or faulty, clustered on hub vertices or spread thin — the CSR
//! and hybrid backends of [`GraphStore`] must expose identical neighbor
//! sets, degrees, weights, buffer order, and quarantine records.
//!
//! Compiled behind the `proptest-tests` feature (see
//! `crates/integration/Cargo.toml`), like the workload property suite.

use proptest::prelude::*;

use tdgraph::prelude::*;

const N: u32 = 24;

/// An arbitrary update: mostly valid adds/deletes, with a tail of
/// out-of-bounds endpoints so lenient application exercises quarantine.
fn arb_update() -> impl Strategy<Value = EdgeUpdate> {
    prop_oneof![
        4 => (0..N, 0..N, 1u32..5)
            .prop_map(|(s, d, w)| EdgeUpdate::addition(s, d, w as f32)),
        3 => (0..N, 0..N).prop_map(|(s, d)| EdgeUpdate::deletion(s, d)),
        1 => (N..N + 4, 0..N).prop_map(|(s, d)| EdgeUpdate::addition(s, d, 1.0)),
        1 => (0..N, N..N + 4).prop_map(|(s, d)| EdgeUpdate::deletion(s, d)),
    ]
}

/// A stream of batches. Hub-heavy batches (many updates on vertex 0) are
/// mixed in so single rows cross the inline→linear→indexed tier
/// boundaries and back within one test case.
fn arb_stream() -> impl Strategy<Value = Vec<Vec<EdgeUpdate>>> {
    let batch = prop_oneof![
        3 => proptest::collection::vec(arb_update(), 1..20),
        1 => proptest::collection::vec(
            (1..N, 1u32..5).prop_map(|(d, w)| EdgeUpdate::addition(0, d, w as f32)),
            1..20,
        ),
        1 => proptest::collection::vec(
            (1..N).prop_map(|d| EdgeUpdate::deletion(0, d)),
            1..20,
        ),
    ];
    proptest::collection::vec(batch, 1..12)
}

fn assert_stores_agree(csr: &AnyStore, hybrid: &AnyStore) {
    assert_eq!(csr.num_vertices(), hybrid.num_vertices());
    assert_eq!(csr.num_edges(), hybrid.num_edges());
    for v in 0..csr.num_vertices() as u32 {
        assert_eq!(csr.degree(v), hybrid.degree(v), "degree of {v}");
        let mut a = csr.neighbors_of(v);
        let mut b = hybrid.neighbors_of(v);
        a.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.total_cmp(&y.1)));
        b.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.total_cmp(&y.1)));
        assert_eq!(a, b, "neighbor set of {v}");
        for &(n, w) in &a {
            assert_eq!(hybrid.edge_weight(v, n), Some(w), "weight ({v},{n})");
        }
    }
    assert_eq!(csr.edges_vec(), hybrid.edges_vec(), "buffer order");
    assert_eq!(csr.snapshot(), hybrid.snapshot(), "snapshot");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lenient application of any stream leaves both stores — and both
    /// quarantine reports — identical after every batch.
    #[test]
    fn lenient_streams_keep_stores_equivalent(stream in arb_stream()) {
        let mut csr = AnyStore::with_capacity(StorageKind::Csr, N as usize);
        let mut hybrid = AnyStore::with_capacity(StorageKind::Hybrid, N as usize);
        let mut q_csr = QuarantineReport::default();
        let mut q_hybrid = QuarantineReport::default();
        for updates in stream {
            let mut scratch = QuarantineReport::default();
            let batch = UpdateBatch::from_updates_lenient(updates, &mut scratch);
            let ra = csr.apply_batch_lenient(&batch, &mut q_csr);
            let rb = hybrid.apply_batch_lenient(&batch, &mut q_hybrid);
            prop_assert_eq!(ra.affected_vertices(), rb.affected_vertices());
            assert_stores_agree(&csr, &hybrid);
            prop_assert_eq!(&q_csr, &q_hybrid);
        }
    }

    /// Strict application agrees on outcome: both stores accept (with the
    /// same effect) or both reject (with the same error), and a rejected
    /// batch leaves both stores untouched (atomicity).
    #[test]
    fn strict_streams_agree_on_acceptance_and_atomicity(stream in arb_stream()) {
        let mut csr = AnyStore::with_capacity(StorageKind::Csr, N as usize);
        let mut hybrid = AnyStore::with_capacity(StorageKind::Hybrid, N as usize);
        for updates in stream {
            let mut scratch = QuarantineReport::default();
            let batch = UpdateBatch::from_updates_lenient(updates, &mut scratch);
            let before = csr.edges_vec();
            match (csr.apply_batch(&batch), hybrid.apply_batch(&batch)) {
                (Ok(ra), Ok(rb)) => {
                    prop_assert_eq!(ra.affected_vertices(), rb.affected_vertices());
                }
                (Err(ea), Err(eb)) => {
                    prop_assert_eq!(ea.to_string(), eb.to_string());
                    prop_assert_eq!(&csr.edges_vec(), &before, "csr rolled back");
                    prop_assert_eq!(&hybrid.edges_vec(), &before, "hybrid rolled back");
                }
                (a, b) => prop_assert!(false, "outcomes diverge: {:?} vs {:?}", a, b),
            }
            assert_stores_agree(&csr, &hybrid);
        }
    }
}
