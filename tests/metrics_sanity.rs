//! Sanity relations over the collected metrics — the quantities the
//! figures plot must be internally consistent and directionally sound.

use tdgraph::prelude::*;

fn experiment() -> Experiment {
    Experiment::new(Dataset::Dblp).sizing(Sizing::Tiny).options(RunConfig {
        sim: SimConfig::small_test(),
        batches: 2,
        ..RunConfig::default()
    })
}

#[test]
fn time_breakdown_sums_to_total() {
    for kind in [EngineKind::LigraO, EngineKind::TdGraphH, EngineKind::Hats] {
        let m = experiment().run(kind).metrics;
        assert_eq!(m.cycles, m.propagation_cycles + m.other_cycles, "{kind:?}");
    }
}

#[test]
fn ratios_are_fractions() {
    for kind in [EngineKind::LigraO, EngineKind::TdGraphH, EngineKind::JetStream] {
        let m = experiment().run(kind).metrics;
        assert!((0.0..=1.0).contains(&m.llc_miss_rate), "{kind:?} miss rate");
        assert!((0.0..=1.0).contains(&m.useful_state_ratio), "{kind:?} useful ratio");
        assert!((0.0..=1.0).contains(&m.useless_update_ratio()), "{kind:?} useless ratio");
        assert!(m.useful_updates <= m.state_updates, "{kind:?} updates");
    }
}

#[test]
fn dram_traffic_is_line_granular_and_consistent() {
    let m = experiment().run(EngineKind::LigraO).metrics;
    assert_eq!(m.dram_bytes % 64, 0, "DRAM moves whole lines");
    assert!(m.dram_reads * 64 <= m.dram_bytes, "reads are part of total bytes");
    assert!(m.energy.total_nj() > 0.0);
    assert!(m.energy.dram_nj > 0.0);
}

#[test]
fn cache_hit_counters_do_not_exceed_accesses() {
    let m = experiment().run(EngineKind::TdGraphS).metrics;
    let s = &m.machine;
    assert!(s.l1_hits <= s.accesses);
    assert!(s.l1_hits + s.l2_hits + s.llc_hits + s.llc_misses <= s.accesses + s.llc_misses);
}

#[test]
fn tdgraph_reduces_useless_updates_on_accumulative() {
    // The headline mechanism: on PageRank the synchronized order must not
    // perform more updates than the round-based baseline.
    let e = experiment().algorithm(Algo::pagerank());
    let baseline = e.run(EngineKind::LigraO).metrics;
    let tdgraph = e.run(EngineKind::TdGraphH).metrics;
    assert!(
        tdgraph.state_updates as f64 <= baseline.state_updates as f64 * 1.1,
        "TDGraph-H updates {} should not exceed Ligra-o {} (+10% slack)",
        tdgraph.state_updates,
        baseline.state_updates
    );
}

#[test]
fn accelerator_latency_hiding_shows_in_propagation_time() {
    // TDGraph-H runs the traversal on the accelerator: its propagation
    // share of time must be below the software TDGraph-S's.
    let e = experiment();
    let hw = e.run(EngineKind::TdGraphH).metrics;
    let sw = e.run(EngineKind::TdGraphS).metrics;
    assert!(hw.cycles < sw.cycles, "hardware {} vs software {}", hw.cycles, sw.cycles);
}

#[test]
fn speedup_and_perf_per_watt_helpers_are_consistent() {
    let e = experiment();
    let a = e.run(EngineKind::LigraO).metrics;
    let b = e.run(EngineKind::TdGraphH).metrics;
    let s = b.speedup_over(&a);
    assert!((s - a.cycles as f64 / b.cycles as f64).abs() < 1e-9);
    assert!(b.perf_per_watt_over(&a) > 0.0);
}

#[test]
fn bandwidth_starvation_increases_cycles() {
    let base = experiment().run(EngineKind::LigraO).metrics.cycles;
    let starved =
        experiment().tune(|o| o.sim.memory.channels = 1).run(EngineKind::LigraO).metrics.cycles;
    assert!(starved >= base, "fewer channels cannot speed the run up");
}
